//! Simulation state and the transfer primitives routers build on.
//!
//! The [`World`] owns every packet, every store, node locations, the run
//! metrics, and — when a radio budget is configured — the per-landmark
//! uplink/downlink budget. Routers never mutate this state directly; they
//! call the transfer methods, which enforce the physical rules every
//! algorithm plays by: co-location, memory limits, TTLs, and single-copy
//! semantics.

use crate::store::PacketStore;
use dtnflow_core::config::SimConfig;
use dtnflow_core::dense::DenseSet;
use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::metrics::RunMetrics;
use dtnflow_core::packet::{Packet, PacketLoc};
use dtnflow_core::time::SimTime;
use dtnflow_core::wheel::{TimingWheel, WheelEntry};
use dtnflow_obs::{EventBuffer, LossKind, Place, ShardBuffers, SimEvent, TraceSink};
use dtnflow_shard::ShardExec;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Map a live packet location to its observability [`Place`]; terminal
/// states have no place.
fn place_of(loc: PacketLoc) -> Option<Place> {
    match loc {
        PacketLoc::PendingAtSource(l) => Some(Place::Pending(l)),
        PacketLoc::OnNode(n) => Some(Place::Node(n)),
        PacketLoc::AtStation(l) => Some(Place::Station(l)),
        _ => None,
    }
}

/// Why a transfer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The packet is already delivered, expired, or lost.
    NotLive,
    /// The packet's TTL elapsed; it has now been dropped.
    Expired,
    /// Source and target are not at the same landmark.
    NotColocated,
    /// The receiving node has no room.
    NoSpace,
    /// The packet is already exactly where it was asked to go.
    SamePlace,
    /// The landmark's radio budget for this time unit is exhausted
    /// (only with `SimConfig::radio_budget_per_unit`).
    RadioBusy,
    /// The landmark's station is down (fault injection): it neither
    /// accepts uplinks nor serves downloads until it recovers.
    StationDown,
}

/// Why constructing a [`World`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The simulation config failed its own validation.
    InvalidConfig(String),
    /// A world needs at least one node and one landmark.
    EmptyNetwork {
        num_nodes: usize,
        num_landmarks: usize,
    },
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::InvalidConfig(msg) => write!(f, "invalid simulation config: {msg}"),
            WorldError::EmptyNetwork {
                num_nodes,
                num_landmarks,
            } => write!(
                f,
                "world needs at least one node and one landmark, got {num_nodes} nodes / {num_landmarks} landmarks"
            ),
        }
    }
}

impl std::error::Error for WorldError {}

/// Why a packet was destroyed by an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossReason {
    /// A station outage (generated at a down station, or retries at a
    /// failed station exhausted).
    Outage,
    /// The node carrying it failed.
    Churn,
}

/// What a station upload achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferOutcome {
    /// The station was the packet's destination: it has been delivered.
    pub delivered: bool,
    /// The packet had already visited this station: a routing loop closed
    /// (§IV-E.2).
    pub loop_closed: bool,
}

/// A read-only, thread-shareable view of the state sharded compute
/// phases may consult (DESIGN.md §13).
///
/// [`World`] itself cannot cross threads — its trace sink is a
/// `Box<dyn TraceSink>` without a `Sync` bound — so parallel workers get
/// this borrowed slice-level view instead: packets, station contents,
/// the run config and the clock. Everything here is plain data; nothing
/// a worker reads through it can be concurrently mutated, because the
/// engine only hands views out while the world is otherwise frozen.
#[derive(Debug, Clone, Copy)]
pub struct WorldView<'a> {
    packets: &'a [Packet],
    station_store: &'a [PacketStore],
    cfg: &'a SimConfig,
    now: SimTime,
    node_loc: &'a [Option<LandmarkId>],
    present: &'a [DenseSet<NodeId>],
    station_up: &'a [bool],
    node_failed: &'a [bool],
}

impl<'a> WorldView<'a> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run configuration.
    pub fn config(&self) -> &'a SimConfig {
        self.cfg
    }

    /// Immutable view of a packet.
    pub fn packet(&self, id: PacketId) -> &'a Packet {
        &self.packets[id.index()]
    }

    /// Packets stored at a station, ascending by id — same order as
    /// [`World::station_packets`].
    pub fn station_packets(&self, lm: LandmarkId) -> impl Iterator<Item = PacketId> + 'a {
        self.station_store[lm.index()].iter()
    }

    /// Number of packets at a station.
    pub fn station_packet_count(&self, lm: LandmarkId) -> usize {
        self.station_store[lm.index()].len()
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.station_store.len()
    }

    /// The landmark a node is currently associated with, as of the
    /// freeze point.
    #[inline]
    pub fn node_location(&self, node: NodeId) -> Option<LandmarkId> {
        self.node_loc[node.index()]
    }

    /// Nodes at a landmark as of the freeze point, ascending by id —
    /// same order as [`World::nodes_at`].
    #[inline]
    pub fn nodes_at(&self, lm: LandmarkId) -> &'a DenseSet<NodeId> {
        &self.present[lm.index()]
    }

    /// Station liveness as of the freeze point.
    #[inline]
    pub fn station_is_up(&self, lm: LandmarkId) -> bool {
        self.station_up[lm.index()]
    }

    /// Node failure state as of the freeze point.
    #[inline]
    pub fn node_is_failed(&self, node: NodeId) -> bool {
        self.node_failed[node.index()]
    }
}

/// The complete simulation state.
#[derive(Debug)]
pub struct World {
    // detlint: allow(S1, reason = "run input, not state: decode_state receives the same SimConfig the run started with")
    cfg: SimConfig,
    now: SimTime,
    // detlint: allow(S1, reason = "network dimension, supplied to decode_state and cross-checked against the snapshot")
    num_nodes: usize,
    // detlint: allow(S1, reason = "network dimension, supplied to decode_state and cross-checked against the snapshot")
    num_landmarks: usize,
    packets: Vec<Packet>,
    node_store: Vec<PacketStore>,
    station_store: Vec<PacketStore>,
    /// Packets generated in a subarea and not yet picked up (no-station
    /// routers only).
    pending: Vec<DenseSet<PacketId>>,
    /// Reusable packet-id buffer for per-arrival scans (never observable:
    /// always cleared before use).
    // detlint: allow(S1, reason = "scratch buffer, always cleared before use")
    scratch_pkts: Vec<PacketId>,
    node_loc: Vec<Option<LandmarkId>>,
    // detlint: allow(S1, reason = "derived occupancy index, rebuilt from node_loc by decode_state")
    present: Vec<DenseSet<NodeId>>,
    metrics: RunMetrics,
    /// Remaining node↔station transfers this time unit, per landmark.
    radio_budget: Option<Vec<u64>>,
    /// Station liveness (fault injection); all `true` without faults.
    station_up: Vec<bool>,
    /// Node failure state (fault injection); all `false` without faults.
    node_failed: Vec<bool>,
    /// Set per landmark when its outage ends; cleared (and the recovery
    /// time recorded) by the station's first successful transfer after.
    awaiting_recovery: Vec<Option<SimTime>>,
    /// Whether the visit being dispatched had its trace record survive
    /// (fault injection; `true` outside fault runs). Routers must skip
    /// predictor/history learning when this is `false`.
    visit_recorded: bool,
    /// Packet deadlines in a hierarchical timing wheel (DESIGN.md §14).
    /// Every created non-stillborn packet is filed once at creation
    /// under `(deadline, id)`; purges drain the wheel instead of
    /// scanning all packets. Because every packet shares `cfg.ttl`,
    /// deadlines are non-decreasing in packet id, so the wheel's
    /// `(deadline, id)` drain order IS the ascending-id order the old
    /// scan produced. Entries of packets that died early (delivered,
    /// lost, expired on touch) stay filed and are skipped when drained.
    expiry: TimingWheel,
    /// Reusable drain buffer for [`World::purge_expired`].
    // detlint: allow(S1, reason = "scratch buffer, always cleared before use")
    scratch_fired: Vec<WheelEntry>,
    /// Timers requested by the router, drained by the engine.
    pub(crate) pending_timers: Vec<(SimTime, u64)>,
    /// Attached observability sink (`None` = tracing disabled; event
    /// construction is skipped entirely, see [`World::emit`]).
    // detlint: allow(S1, reason = "sink handle, not state: the recorder checkpoints itself via encode_recorder; the handle is re-attached on resume")
    trace: Option<Box<dyn TraceSink>>,
}

impl World {
    /// Create a world with empty stores and everyone off-network.
    ///
    /// Panics on an invalid config or empty network; use [`World::try_new`]
    /// to surface those as errors instead.
    pub fn new(cfg: SimConfig, num_nodes: usize, num_landmarks: usize) -> Self {
        match Self::try_new(cfg, num_nodes, num_landmarks) {
            Ok(w) => w,
            // detlint: allow(P1, reason = "documented panicking constructor; try_new is the fallible path")
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible construction: a malformed config or an empty network is an
    /// `Err`, so experiment sweeps can skip a bad point instead of
    /// aborting.
    pub fn try_new(
        cfg: SimConfig,
        num_nodes: usize,
        num_landmarks: usize,
    ) -> Result<Self, WorldError> {
        cfg.validate().map_err(WorldError::InvalidConfig)?;
        if num_nodes == 0 || num_landmarks == 0 {
            return Err(WorldError::EmptyNetwork {
                num_nodes,
                num_landmarks,
            });
        }
        let radio_budget = cfg.radio_budget_per_unit.map(|b| vec![b; num_landmarks]);
        Ok(World {
            now: SimTime::ZERO,
            num_nodes,
            num_landmarks,
            packets: Vec::new(),
            node_store: (0..num_nodes)
                .map(|_| PacketStore::bounded(cfg.node_memory))
                .collect(),
            station_store: (0..num_landmarks)
                .map(|_| PacketStore::unbounded())
                .collect(),
            pending: vec![DenseSet::new(); num_landmarks],
            scratch_pkts: Vec::new(),
            node_loc: vec![None; num_nodes],
            present: vec![DenseSet::new(); num_landmarks],
            metrics: RunMetrics::default(),
            radio_budget,
            station_up: vec![true; num_landmarks],
            node_failed: vec![false; num_nodes],
            awaiting_recovery: vec![None; num_landmarks],
            visit_recorded: true,
            expiry: TimingWheel::new(),
            scratch_fired: Vec::new(),
            pending_timers: Vec::new(),
            trace: None,
            cfg,
        })
    }

    // ---- read-only state -------------------------------------------------

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Number of mobile nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Immutable view of a packet.
    pub fn packet(&self, id: PacketId) -> &Packet {
        &self.packets[id.index()]
    }

    /// All packets created so far (diagnostics; includes finished ones).
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// The landmark a node is currently associated with.
    pub fn node_location(&self, node: NodeId) -> Option<LandmarkId> {
        self.node_loc[node.index()]
    }

    /// Nodes currently at a landmark, ascending by id.
    pub fn nodes_at(&self, lm: LandmarkId) -> &DenseSet<NodeId> {
        &self.present[lm.index()]
    }

    /// Packets in a node's memory, ascending by id.
    pub fn node_packets(&self, node: NodeId) -> impl Iterator<Item = PacketId> + '_ {
        self.node_store[node.index()].iter()
    }

    /// Number of packets in a node's memory.
    pub fn node_packet_count(&self, node: NodeId) -> usize {
        self.node_store[node.index()].len()
    }

    /// Free bytes in a node's memory.
    pub fn node_free_bytes(&self, node: NodeId) -> u64 {
        self.node_store[node.index()].free_bytes()
    }

    /// Whether one more packet fits in a node's memory.
    pub fn node_has_space(&self, node: NodeId) -> bool {
        self.node_store[node.index()].fits(self.cfg.packet_size)
    }

    /// Packets stored at a station, ascending by id.
    pub fn station_packets(&self, lm: LandmarkId) -> impl Iterator<Item = PacketId> + '_ {
        self.station_store[lm.index()].iter()
    }

    /// Number of packets at a station.
    pub fn station_packet_count(&self, lm: LandmarkId) -> usize {
        self.station_store[lm.index()].len()
    }

    /// Packets pending pickup in a subarea (no-station routers).
    pub fn pending_at(&self, lm: LandmarkId) -> impl Iterator<Item = PacketId> + '_ {
        self.pending[lm.index()].iter()
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Whether the station at `lm` is currently up (always `true` outside
    /// fault-injection runs).
    #[inline]
    pub fn station_is_up(&self, lm: LandmarkId) -> bool {
        self.station_up[lm.index()]
    }

    /// Whether `node` is currently failed (off-network due to churn).
    #[inline]
    pub fn node_is_failed(&self, node: NodeId) -> bool {
        self.node_failed[node.index()]
    }

    /// Whether the trace record of the visit being dispatched survived.
    /// `false` only during fault runs with record loss: the contact is
    /// physically happening, but routers must not learn from it.
    #[inline]
    pub fn visit_recorded(&self) -> bool {
        self.visit_recorded
    }

    /// A read-only view safe to share across shard workers (the world
    /// itself stays on the engine thread).
    pub fn view(&self) -> WorldView<'_> {
        WorldView {
            packets: &self.packets,
            station_store: &self.station_store,
            cfg: &self.cfg,
            now: self.now,
            node_loc: &self.node_loc,
            present: &self.present,
            station_up: &self.station_up,
            node_failed: &self.node_failed,
        }
    }

    // ---- observability ---------------------------------------------------

    /// Attach an observability sink; subsequent state changes emit
    /// [`SimEvent`]s into it.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detach and return the sink (e.g. to downcast a recorder after a
    /// run).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Borrow the attached sink without detaching it (checkpointing).
    pub(crate) fn trace_sink_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.trace.as_deref_mut()
    }

    /// Whether a sink is attached. Emission call sites that need to do
    /// extra work to *assemble* an event (beyond moving already-computed
    /// values) should check this first.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Emit one event. The closure receives the current [`SimTime`] and is
    /// only invoked while a sink is attached — with tracing disabled, not
    /// even the event struct is constructed (zero overhead).
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce(SimTime) -> SimEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(make(self.now));
        }
    }

    // ---- router services -------------------------------------------------

    /// Ask the engine to call `Router::on_timer(token)` at `at` (clamped to
    /// now if already past).
    pub fn schedule_timer(&mut self, at: SimTime, token: u64) {
        self.pending_timers.push((at.max(self.now), token));
    }

    /// Account the exchange of a routing/utility table with `entries`
    /// entries (§V-A.1 overall-cost metric).
    pub fn record_table_exchange(&mut self, entries: usize) {
        self.metrics
            .record_table_exchange(entries, self.cfg.entries_per_packet);
    }

    /// Account one re-queue/retry of a fault-stranded packet (resilience
    /// metric; routers call this when re-dispatching after an outage).
    pub fn record_retry(&mut self) {
        self.metrics.record_retry();
    }

    // ---- transfers -------------------------------------------------------

    /// Move a live packet to `to`'s memory, from wherever it is: the
    /// pending pool of `to`'s landmark, the station `to` is at, or a
    /// co-located node. Counts one forwarding operation.
    pub fn transfer_to_node(&mut self, pkt: PacketId, to: NodeId) -> Result<(), TransferError> {
        self.check_live(pkt)?;
        let loc = self.packets[pkt.index()].loc;
        let to_lm = self.node_loc[to.index()].ok_or(TransferError::NotColocated)?;
        let size = self.cfg.packet_size;
        match loc {
            PacketLoc::PendingAtSource(l) => {
                if l != to_lm {
                    return Err(TransferError::NotColocated);
                }
                if !self.node_store[to.index()].fits(size) {
                    return Err(TransferError::NoSpace);
                }
                self.pending[l.index()].remove(pkt);
            }
            PacketLoc::AtStation(l) => {
                if l != to_lm {
                    return Err(TransferError::NotColocated);
                }
                if !self.station_up[l.index()] {
                    return Err(TransferError::StationDown);
                }
                if !self.node_store[to.index()].fits(size) {
                    return Err(TransferError::NoSpace);
                }
                self.take_radio_budget(l)?;
                self.station_store[l.index()].remove(pkt, size);
                self.note_station_activity(l);
            }
            PacketLoc::OnNode(m) => {
                if m == to {
                    return Err(TransferError::SamePlace);
                }
                if self.node_loc[m.index()] != Some(to_lm) {
                    return Err(TransferError::NotColocated);
                }
                if !self.node_store[to.index()].fits(size) {
                    return Err(TransferError::NoSpace);
                }
                self.node_store[m.index()].remove(pkt, size);
            }
            _ => return Err(TransferError::NotLive),
        }
        // Invariant: `fits` was checked above and nothing touched the
        // store since, so the insert cannot be refused.
        assert!(
            self.node_store[to.index()].insert(pkt, size),
            "node store refused an insert that fit"
        );
        let p = &mut self.packets[pkt.index()];
        p.loc = PacketLoc::OnNode(to);
        p.hops += 1;
        self.metrics.record_forward();
        if let Some(from) = place_of(loc) {
            self.emit(|at| SimEvent::PacketForwarded {
                at,
                pkt,
                from,
                to: Place::Node(to),
            });
        }
        Ok(())
    }

    /// Upload a packet to the station at `lm` (from a co-located carrier
    /// or the subarea's pending pool). Delivers it when `lm` is its
    /// destination; otherwise stores it and reports whether a routing loop
    /// closed. Counts one forwarding operation.
    pub fn transfer_to_station(
        &mut self,
        pkt: PacketId,
        lm: LandmarkId,
    ) -> Result<TransferOutcome, TransferError> {
        self.check_live(pkt)?;
        if !self.station_up[lm.index()] {
            return Err(TransferError::StationDown);
        }
        let size = self.cfg.packet_size;
        let loc = self.packets[pkt.index()].loc;
        match loc {
            PacketLoc::OnNode(m) => {
                if self.node_loc[m.index()] != Some(lm) {
                    return Err(TransferError::NotColocated);
                }
                self.take_radio_budget(lm)?;
                self.node_store[m.index()].remove(pkt, size);
            }
            PacketLoc::PendingAtSource(l) => {
                if l != lm {
                    return Err(TransferError::NotColocated);
                }
                self.pending[l.index()].remove(pkt);
            }
            PacketLoc::AtStation(l) if l == lm => return Err(TransferError::SamePlace),
            _ => return Err(TransferError::NotLive),
        }
        self.note_station_activity(lm);
        self.metrics.record_forward();
        let now = self.now;
        let p = &mut self.packets[pkt.index()];
        p.hops += 1;
        // A node-addressed packet (§IV-E.4) is only delivered by its
        // destination *node* claiming it, never by reaching a landmark.
        if p.dst == lm && p.dst_node.is_none() {
            p.loc = PacketLoc::Delivered(now);
            let delay = now.since(p.created);
            let hops = p.hops;
            self.metrics.record_delivery(delay);
            if let Some(from) = place_of(loc) {
                self.emit(|at| SimEvent::PacketDelivered {
                    at,
                    pkt,
                    lm,
                    delay,
                    hops,
                    from,
                });
            }
            return Ok(TransferOutcome {
                delivered: true,
                loop_closed: false,
            });
        }
        let loop_closed = p.record_station_visit(lm);
        p.loc = PacketLoc::AtStation(lm);
        // Invariant: station stores are unbounded, inserts never fail.
        assert!(
            self.station_store[lm.index()].insert(pkt, size),
            "unbounded station store refused an insert"
        );
        if let Some(from) = place_of(loc) {
            self.emit(|at| SimEvent::PacketForwarded {
                at,
                pkt,
                from,
                to: Place::Station(lm),
            });
        }
        Ok(TransferOutcome {
            delivered: false,
            loop_closed,
        })
    }

    /// Deliver a station-held packet addressed to mobile node `to`
    /// (§IV-E.4), who must be at that station's landmark.
    pub fn deliver_to_dst_node(&mut self, pkt: PacketId, to: NodeId) -> Result<(), TransferError> {
        self.check_live(pkt)?;
        let p = &self.packets[pkt.index()];
        if p.dst_node != Some(to) {
            return Err(TransferError::NotColocated);
        }
        let PacketLoc::AtStation(l) = p.loc else {
            return Err(TransferError::NotLive);
        };
        if self.node_loc[to.index()] != Some(l) {
            return Err(TransferError::NotColocated);
        }
        if !self.station_up[l.index()] {
            return Err(TransferError::StationDown);
        }
        let size = self.cfg.packet_size;
        self.station_store[l.index()].remove(pkt, size);
        self.note_station_activity(l);
        let now = self.now;
        let p = &mut self.packets[pkt.index()];
        p.loc = PacketLoc::Delivered(now);
        p.hops += 1;
        let delay = now.since(p.created);
        let hops = p.hops;
        self.metrics.record_delivery(delay);
        self.metrics.record_forward();
        self.emit(|at| SimEvent::PacketDelivered {
            at,
            pkt,
            lm: l,
            delay,
            hops,
            from: Place::Station(l),
        });
        Ok(())
    }

    // ---- engine-side mutations (crate-private) ----------------------------

    fn check_live(&mut self, pkt: PacketId) -> Result<(), TransferError> {
        let p = &self.packets[pkt.index()];
        if !p.loc.is_live() {
            return Err(TransferError::NotLive);
        }
        if p.is_expired_at(self.now) {
            self.expire_packet(pkt);
            return Err(TransferError::Expired);
        }
        Ok(())
    }

    /// Record a completed recovery if `lm` was waiting for its first
    /// post-outage transfer.
    fn note_station_activity(&mut self, lm: LandmarkId) {
        if let Some(since) = self.awaiting_recovery[lm.index()].take() {
            self.metrics.record_recovery(self.now.since(since));
        }
    }

    /// Destroy a live packet because of an injected fault, removing it
    /// from wherever it sits and counting it under `reason`. Routers call
    /// this when a stranded packet exhausts its retry budget; the engine
    /// calls it for churn and down-station generation losses.
    pub fn drop_lost(&mut self, pkt: PacketId, reason: LossReason) -> Result<(), TransferError> {
        let size = self.cfg.packet_size;
        let loc = self.packets[pkt.index()].loc;
        match loc {
            PacketLoc::OnNode(n) => {
                self.node_store[n.index()].remove(pkt, size);
            }
            PacketLoc::AtStation(l) => {
                self.station_store[l.index()].remove(pkt, size);
            }
            PacketLoc::PendingAtSource(l) => {
                self.pending[l.index()].remove(pkt);
            }
            _ => return Err(TransferError::NotLive),
        }
        self.packets[pkt.index()].loc = PacketLoc::Lost;
        let kind = match reason {
            LossReason::Outage => {
                self.metrics.record_lost_to_outage();
                LossKind::Outage
            }
            LossReason::Churn => {
                self.metrics.record_lost_to_churn();
                LossKind::Churn
            }
        };
        let from = place_of(loc);
        self.emit(|at| SimEvent::PacketLost {
            at,
            pkt,
            from,
            kind,
        });
        Ok(())
    }

    pub(crate) fn station_down(&mut self, lm: LandmarkId) {
        self.station_up[lm.index()] = false;
        // An outage starting before the previous one's recovery completed
        // voids that pending measurement.
        self.awaiting_recovery[lm.index()] = None;
        self.emit(|at| SimEvent::StationDown { at, lm });
    }

    pub(crate) fn station_recover(&mut self, lm: LandmarkId) {
        self.station_up[lm.index()] = true;
        self.awaiting_recovery[lm.index()] = Some(self.now);
        self.emit(|at| SimEvent::StationUp { at, lm });
    }

    /// Fail a node: drop it off the network and destroy everything it
    /// carried (counted as churn losses). Returns how many packets died.
    pub(crate) fn node_fail(&mut self, node: NodeId) -> usize {
        self.node_failed[node.index()] = true;
        if let Some(lm) = self.node_loc[node.index()].take() {
            self.present[lm.index()].remove(node);
            // The failure ends any in-progress contact.
            self.emit(|at| SimEvent::ContactClose { at, node, lm });
        }
        let carried: Vec<PacketId> = self.node_store[node.index()].iter().collect();
        for pkt in &carried {
            // A packet in a node's store is live by construction; a stale
            // entry is a bookkeeping bug worth catching in debug, not a
            // reason to abort a release run mid-experiment.
            let dropped = self.drop_lost(*pkt, LossReason::Churn);
            debug_assert!(dropped.is_ok(), "carried packets are live: {dropped:?}");
        }
        let lost_packets = carried.len() as u64;
        self.emit(|at| SimEvent::NodeFailed {
            at,
            node,
            lost_packets,
        });
        carried.len()
    }

    pub(crate) fn node_recover(&mut self, node: NodeId) {
        self.node_failed[node.index()] = false;
        // The node rejoins the network at its next trace arrival; it is
        // not teleported back mid-visit.
        self.emit(|at| SimEvent::NodeRecovered { at, node });
    }

    pub(crate) fn set_visit_recorded(&mut self, recorded: bool) {
        self.visit_recorded = recorded;
    }

    fn take_radio_budget(&mut self, lm: LandmarkId) -> Result<(), TransferError> {
        if let Some(budget) = &mut self.radio_budget {
            let slot = &mut budget[lm.index()];
            if *slot == 0 {
                return Err(TransferError::RadioBusy);
            }
            *slot -= 1;
        }
        Ok(())
    }

    /// Remaining node↔station transfers at `lm` this unit (`None` when
    /// radio is unconstrained).
    pub fn radio_budget_left(&self, lm: LandmarkId) -> Option<u64> {
        self.radio_budget.as_ref().map(|b| b[lm.index()])
    }

    pub(crate) fn set_now(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "time must not go backwards");
        self.now = t;
    }

    pub(crate) fn reset_radio_budget(&mut self) {
        // `radio_budget` is Some exactly when the config sets a budget
        // (see `try_new`), so the per-unit value is always available here.
        if let (Some(budget), Some(per_unit)) =
            (&mut self.radio_budget, self.cfg.radio_budget_per_unit)
        {
            budget.iter_mut().for_each(|b| *b = per_unit);
        }
    }

    pub(crate) fn node_arrive(&mut self, node: NodeId, lm: LandmarkId) {
        debug_assert!(
            self.node_loc[node.index()].is_none(),
            "node already somewhere"
        );
        self.node_loc[node.index()] = Some(lm);
        self.present[lm.index()].insert(node);
        self.emit(|at| SimEvent::ContactOpen { at, node, lm });
    }

    pub(crate) fn node_depart(&mut self, node: NodeId, lm: LandmarkId) {
        debug_assert_eq!(self.node_loc[node.index()], Some(lm));
        self.node_loc[node.index()] = None;
        self.present[lm.index()].remove(node);
        self.emit(|at| SimEvent::ContactClose { at, node, lm });
    }

    /// Create a packet addressed to a mobile node (§IV-E.4): `via` is one
    /// of the destination node's frequently visited landmarks; the packet
    /// waits at `via`'s station until the node shows up. Landmark-addressed
    /// workload packets are created by the engine instead.
    pub fn create_node_packet(
        &mut self,
        src: LandmarkId,
        via: LandmarkId,
        dst_node: NodeId,
        station_mode: bool,
    ) -> PacketId {
        self.create_packet(src, via, Some(dst_node), station_mode)
    }

    /// Create a packet; it starts pending (no-station mode) or directly at
    /// its source station (station mode).
    pub(crate) fn create_packet(
        &mut self,
        src: LandmarkId,
        dst: LandmarkId,
        dst_node: Option<NodeId>,
        station_mode: bool,
    ) -> PacketId {
        assert!(
            src != dst || dst_node.is_some(),
            "packets must cross subareas"
        );
        let id = PacketId::from(self.packets.len());
        let mut p = Packet::new(id, src, dst, self.now, self.cfg.ttl);
        p.dst_node = dst_node;
        if station_mode {
            if !self.station_up[src.index()] {
                // A down station buffers nothing: the packet is generated
                // (it counts against the delivery rate) but immediately
                // lost to the outage.
                p.loc = PacketLoc::Lost;
                self.packets.push(p);
                self.metrics.generated += 1;
                self.metrics.record_lost_to_outage();
                self.emit(|at| SimEvent::PacketGenerated {
                    at,
                    pkt: id,
                    src,
                    dst,
                    start: None,
                });
                self.emit(|at| SimEvent::PacketLost {
                    at,
                    pkt: id,
                    from: None,
                    kind: LossKind::Outage,
                });
                return id;
            }
            p.loc = PacketLoc::AtStation(src);
            p.record_station_visit(src);
            // Invariant: station stores are unbounded, inserts never fail.
            assert!(
                self.station_store[src.index()].insert(id, self.cfg.packet_size),
                "unbounded station store refused an insert"
            );
        } else {
            self.pending[src.index()].insert(id);
        }
        let start = place_of(p.loc);
        let deadline = p.deadline();
        // The wheel's (deadline, id) drain order equals ascending id only
        // while deadlines are non-decreasing in id: shared ttl + monotone
        // creation times. Guard the invariant the purge order rests on.
        debug_assert!(
            self.packets.last().is_none_or(|q| q.created <= p.created),
            "packet creation times must be non-decreasing"
        );
        self.packets.push(p);
        self.expiry
            .push(deadline.secs(), id.index() as u64, id.index() as u64);
        self.metrics.generated += 1;
        self.emit(|at| SimEvent::PacketGenerated {
            at,
            pkt: id,
            src,
            dst,
            start,
        });
        id
    }

    /// Drop a packet whose TTL elapsed, removing it from wherever it sits.
    pub(crate) fn expire_packet(&mut self, pkt: PacketId) {
        let size = self.cfg.packet_size;
        let loc = self.packets[pkt.index()].loc;
        match loc {
            PacketLoc::OnNode(n) => {
                self.node_store[n.index()].remove(pkt, size);
            }
            PacketLoc::AtStation(l) => {
                self.station_store[l.index()].remove(pkt, size);
            }
            PacketLoc::PendingAtSource(l) => {
                self.pending[l.index()].remove(pkt);
            }
            _ => return,
        }
        self.packets[pkt.index()].loc = PacketLoc::Expired;
        self.metrics.record_expiry();
        if let Some(from) = place_of(loc) {
            self.emit(|at| SimEvent::PacketExpired { at, pkt, from });
        }
    }

    /// Drop every live packet whose TTL has elapsed.
    ///
    /// Drains the expiry wheel up to `now` instead of scanning all
    /// packets: the drained entries arrive in `(deadline, id)` order —
    /// equal to the ascending-id order of the scan this replaces, since
    /// deadlines are non-decreasing in id (see `create_packet`) — and
    /// the drain condition `deadline <= now` is exactly
    /// `Packet::is_expired_at`. Entries whose packet already died
    /// (delivered, lost, expired on touch) are skipped, mirroring the
    /// old scan's `is_live` filter.
    pub(crate) fn purge_expired(&mut self) {
        let now = self.now;
        let mut fired = std::mem::take(&mut self.scratch_fired);
        fired.clear();
        self.expiry.drain_up_to(now.secs(), &mut fired);
        for e in &fired {
            let pkt = PacketId::from(e.payload as usize);
            if self.packets[pkt.index()].loc.is_live() {
                self.expire_packet(pkt);
            }
        }
        fired.clear();
        self.scratch_fired = fired;
    }

    /// [`World::purge_expired`]; the `exec` parameter is kept for call
    /// sites but unused. The wheel drain touches only due entries —
    /// already sublinear in the packet population — so the fan-out the
    /// old full scan needed (find in parallel, commit serially) has
    /// nothing left to parallelize.
    pub(crate) fn purge_expired_sharded(&mut self, _exec: &ShardExec) {
        self.purge_expired();
    }

    /// Drain a worker-filled event buffer into the attached sink, or
    /// discard it when tracing is off.
    pub fn flush_event_buffer(&mut self, buf: &mut EventBuffer) {
        match self.trace.as_deref_mut() {
            Some(sink) => buf.drain_into(sink),
            None => buf.clear(),
        }
    }

    /// Drain per-group event buffers into the attached sink in ascending
    /// group order (the sharded commit phase's deterministic flush), or
    /// discard them when tracing is off.
    pub fn flush_shard_buffers(&mut self, bufs: &mut ShardBuffers) {
        match self.trace.as_deref_mut() {
            Some(sink) => bufs.drain_into(sink),
            None => bufs.clear(),
        }
    }

    /// Deliver node-carried packets whose destination is `lm` without a
    /// forwarding operation (no-station routers: arrival at the
    /// destination subarea *is* delivery).
    pub(crate) fn auto_deliver_on_arrival(&mut self, node: NodeId, lm: LandmarkId) {
        let size = self.cfg.packet_size;
        // Reused buffer: arrivals are the hottest event, and a fresh
        // allocation per arrival dwarfs the delivery work itself.
        let mut here = std::mem::take(&mut self.scratch_pkts);
        here.clear();
        here.extend(
            self.node_store[node.index()]
                .iter()
                .filter(|&p| self.packets[p.index()].dst == lm),
        );
        let now = self.now;
        for &pkt in &here {
            // The TTL may have lapsed since the last purge: that packet
            // is a drop, not a delivery.
            if self.packets[pkt.index()].is_expired_at(now) {
                self.expire_packet(pkt);
                continue;
            }
            self.node_store[node.index()].remove(pkt, size);
            let p = &mut self.packets[pkt.index()];
            p.loc = PacketLoc::Delivered(now);
            let delay = now.since(p.created);
            let hops = p.hops;
            self.metrics.record_delivery(delay);
            self.emit(|at| SimEvent::PacketDelivered {
                at,
                pkt,
                lm,
                delay,
                hops,
                from: Place::Node(node),
            });
        }
        self.scratch_pkts = here;
    }

    pub(crate) fn into_outcome(self) -> (RunMetrics, Vec<Packet>) {
        (self.metrics, self.packets)
    }

    /// Checkpoint encoding (DESIGN.md §11): every observable field in
    /// declaration order. Excluded by design: the config and network sizes
    /// (supplied again on restore and fingerprint-checked at the snapshot
    /// level), `scratch_pkts` (always cleared before use), `present`
    /// (derivable from `node_loc`), and the trace sink (checkpointed
    /// separately so the engine can order the `CheckpointWritten` event
    /// before the recorder bytes are captured).
    pub(crate) fn encode_state(&self, w: &mut Writer) {
        w.put_u64(self.now.secs());
        w.put_usize(self.packets.len());
        for p in &self.packets {
            p.encode(w);
        }
        w.put_usize(self.node_store.len());
        for s in &self.node_store {
            s.encode(w);
        }
        w.put_usize(self.station_store.len());
        for s in &self.station_store {
            s.encode(w);
        }
        w.put_usize(self.pending.len());
        for set in &self.pending {
            set.encode(w);
        }
        w.put_usize(self.node_loc.len());
        for loc in &self.node_loc {
            match loc {
                None => w.put_u8(0),
                Some(lm) => {
                    w.put_u8(1);
                    w.put_u16(lm.0);
                }
            }
        }
        self.metrics.encode(w);
        match &self.radio_budget {
            None => w.put_u8(0),
            Some(budget) => {
                w.put_u8(1);
                w.put_usize(budget.len());
                for &b in budget {
                    w.put_u64(b);
                }
            }
        }
        w.put_usize(self.station_up.len());
        for &up in &self.station_up {
            w.put_bool(up);
        }
        w.put_usize(self.node_failed.len());
        for &f in &self.node_failed {
            w.put_bool(f);
        }
        w.put_usize(self.awaiting_recovery.len());
        for slot in &self.awaiting_recovery {
            match slot {
                None => w.put_u8(0),
                Some(t) => {
                    w.put_u8(1);
                    w.put_u64(t.secs());
                }
            }
        }
        w.put_bool(self.visit_recorded);
        self.expiry.encode(w);
        w.put_usize(self.pending_timers.len());
        for &(at, token) in &self.pending_timers {
            w.put_u64(at.secs());
            w.put_u64(token);
        }
    }

    /// Inverse of [`World::encode_state`]. The config and network sizes
    /// come from the caller (re-derived from the run inputs); per-node and
    /// per-landmark vector lengths must match them. `present` is rebuilt
    /// from `node_loc` by an ascending node scan, which reproduces the
    /// exact `DenseSet` contents incremental arrivals would have built.
    pub(crate) fn decode_state(
        r: &mut Reader<'_>,
        cfg: SimConfig,
        num_nodes: usize,
        num_landmarks: usize,
    ) -> Result<World, SnapshotError> {
        const CTX: &str = "World";
        let now = SimTime(r.u64(CTX)?);
        let np = r.seq_len("World.packets")?;
        let mut packets = Vec::with_capacity(np);
        for i in 0..np {
            let p = Packet::decode(r)?;
            if p.id.index() != i {
                return Err(SnapshotError::Corrupt { context: CTX });
            }
            packets.push(p);
        }
        let expect_len = |n: usize, want: usize| {
            if n == want {
                Ok(())
            } else {
                Err(SnapshotError::Corrupt { context: CTX })
            }
        };
        let n = r.seq_len("World.node_store")?;
        expect_len(n, num_nodes)?;
        let mut node_store = Vec::with_capacity(n);
        for _ in 0..n {
            node_store.push(PacketStore::decode(r)?);
        }
        let n = r.seq_len("World.station_store")?;
        expect_len(n, num_landmarks)?;
        let mut station_store = Vec::with_capacity(n);
        for _ in 0..n {
            station_store.push(PacketStore::decode(r)?);
        }
        let n = r.seq_len("World.pending")?;
        expect_len(n, num_landmarks)?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            pending.push(DenseSet::decode(r)?);
        }
        let n = r.seq_len("World.node_loc")?;
        expect_len(n, num_nodes)?;
        let mut node_loc = Vec::with_capacity(n);
        for _ in 0..n {
            node_loc.push(match r.u8(CTX)? {
                0 => None,
                1 => {
                    let lm = LandmarkId(r.u16(CTX)?);
                    if lm.index() >= num_landmarks {
                        return Err(SnapshotError::Corrupt { context: CTX });
                    }
                    Some(lm)
                }
                t => {
                    return Err(SnapshotError::InvalidTag {
                        context: "World.node_loc",
                        tag: t as u64,
                    })
                }
            });
        }
        let metrics = RunMetrics::decode(r)?;
        let radio_budget = match r.u8(CTX)? {
            0 => None,
            1 => {
                let n = r.seq_len("World.radio_budget")?;
                expect_len(n, num_landmarks)?;
                let mut budget = Vec::with_capacity(n);
                for _ in 0..n {
                    budget.push(r.u64(CTX)?);
                }
                Some(budget)
            }
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: "World.radio_budget",
                    tag: t as u64,
                })
            }
        };
        if radio_budget.is_some() != cfg.radio_budget_per_unit.is_some() {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let n = r.seq_len("World.station_up")?;
        expect_len(n, num_landmarks)?;
        let mut station_up = Vec::with_capacity(n);
        for _ in 0..n {
            station_up.push(r.bool(CTX)?);
        }
        let n = r.seq_len("World.node_failed")?;
        expect_len(n, num_nodes)?;
        let mut node_failed = Vec::with_capacity(n);
        for _ in 0..n {
            node_failed.push(r.bool(CTX)?);
        }
        let n = r.seq_len("World.awaiting_recovery")?;
        expect_len(n, num_landmarks)?;
        let mut awaiting_recovery = Vec::with_capacity(n);
        for _ in 0..n {
            awaiting_recovery.push(match r.u8(CTX)? {
                0 => None,
                1 => Some(SimTime(r.u64(CTX)?)),
                t => {
                    return Err(SnapshotError::InvalidTag {
                        context: "World.awaiting_recovery",
                        tag: t as u64,
                    })
                }
            });
        }
        let visit_recorded = r.bool(CTX)?;
        let expiry = TimingWheel::decode(r)?;
        if expiry
            .peek_min()
            .is_some_and(|e| e.payload as usize >= packets.len())
        {
            // Wheel payloads are packet ids; the minimum check catches
            // gross mismatches cheaply (full validation would rescan).
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let n = r.seq_len("World.pending_timers")?;
        let mut pending_timers = Vec::with_capacity(n);
        for _ in 0..n {
            pending_timers.push((SimTime(r.u64(CTX)?), r.u64(CTX)?));
        }
        let mut present = vec![DenseSet::new(); num_landmarks];
        for (i, loc) in node_loc.iter().enumerate() {
            if let Some(lm) = loc {
                present[lm.index()].insert(NodeId::from(i));
            }
        }
        Ok(World {
            cfg,
            now,
            num_nodes,
            num_landmarks,
            packets,
            node_store,
            station_store,
            pending,
            scratch_pkts: Vec::new(),
            node_loc,
            present,
            metrics,
            radio_budget,
            station_up,
            node_failed,
            awaiting_recovery,
            visit_recorded,
            expiry,
            scratch_fired: Vec::new(),
            pending_timers,
            trace: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::DAY;

    fn world() -> World {
        let cfg = SimConfig {
            node_memory: 2_048, // two packets
            ..SimConfig::default()
        };
        World::new(cfg, 3, 3)
    }

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn pending_pickup_and_delivery_cycle() {
        let mut w = world();
        w.node_arrive(n(0), lm(0));
        let p = w.create_packet(lm(0), lm(1), None, false);
        assert!(w.pending_at(lm(0)).any(|x| x == p));
        w.transfer_to_node(p, n(0)).unwrap();
        assert_eq!(w.packet(p).loc, PacketLoc::OnNode(n(0)));
        assert_eq!(w.metrics().forwarding_ops, 1);
        // Carrier moves to the destination: auto-delivery, no extra op.
        w.node_depart(n(0), lm(0));
        w.set_now(SimTime(100));
        w.node_arrive(n(0), lm(1));
        w.auto_deliver_on_arrival(n(0), lm(1));
        assert!(matches!(w.packet(p).loc, PacketLoc::Delivered(_)));
        assert_eq!(w.metrics().delivered, 1);
        assert_eq!(w.metrics().forwarding_ops, 1);
        assert_eq!(w.metrics().delays, vec![100]);
    }

    #[test]
    fn station_mode_generation_and_upload_delivery() {
        let mut w = world();
        let p = w.create_packet(lm(0), lm(2), None, true);
        assert_eq!(w.packet(p).loc, PacketLoc::AtStation(lm(0)));
        w.node_arrive(n(1), lm(0));
        w.transfer_to_node(p, n(1)).unwrap();
        w.node_depart(n(1), lm(0));
        w.set_now(SimTime(50));
        w.node_arrive(n(1), lm(2));
        let out = w.transfer_to_station(p, lm(2)).unwrap();
        assert!(out.delivered);
        assert_eq!(w.metrics().delivered, 1);
        assert_eq!(w.metrics().forwarding_ops, 2);
    }

    #[test]
    fn memory_limit_enforced() {
        let mut w = world();
        w.node_arrive(n(0), lm(0));
        let a = w.create_packet(lm(0), lm(1), None, false);
        let b = w.create_packet(lm(0), lm(1), None, false);
        let c = w.create_packet(lm(0), lm(1), None, false);
        w.transfer_to_node(a, n(0)).unwrap();
        w.transfer_to_node(b, n(0)).unwrap();
        assert_eq!(w.transfer_to_node(c, n(0)), Err(TransferError::NoSpace));
        assert!(!w.node_has_space(n(0)));
        assert_eq!(w.node_packet_count(n(0)), 2);
    }

    #[test]
    fn colocation_required() {
        let mut w = world();
        w.node_arrive(n(0), lm(0));
        w.node_arrive(n(1), lm(1));
        let p = w.create_packet(lm(0), lm(2), None, false);
        // Node 1 is elsewhere.
        assert_eq!(
            w.transfer_to_node(p, n(1)),
            Err(TransferError::NotColocated)
        );
        w.transfer_to_node(p, n(0)).unwrap();
        // Node-to-node requires same landmark.
        assert_eq!(
            w.transfer_to_node(p, n(1)),
            Err(TransferError::NotColocated)
        );
        // Station upload at the wrong landmark also fails.
        assert_eq!(
            w.transfer_to_station(p, lm(1)),
            Err(TransferError::NotColocated)
        );
    }

    #[test]
    fn node_to_node_transfer() {
        let mut w = world();
        w.node_arrive(n(0), lm(0));
        w.node_arrive(n(1), lm(0));
        let p = w.create_packet(lm(0), lm(2), None, false);
        w.transfer_to_node(p, n(0)).unwrap();
        w.transfer_to_node(p, n(1)).unwrap();
        assert_eq!(w.packet(p).loc, PacketLoc::OnNode(n(1)));
        assert_eq!(w.node_packet_count(n(0)), 0);
        assert_eq!(w.metrics().forwarding_ops, 2);
        assert_eq!(w.transfer_to_node(p, n(1)), Err(TransferError::SamePlace));
    }

    #[test]
    fn expiry_on_touch_and_purge() {
        let mut w = world();
        w.node_arrive(n(0), lm(0));
        let p = w.create_packet(lm(0), lm(1), None, false);
        w.set_now(SimTime::ZERO + DAY.mul(21)); // past the 20-day TTL
        assert_eq!(w.transfer_to_node(p, n(0)), Err(TransferError::Expired));
        assert_eq!(w.packet(p).loc, PacketLoc::Expired);
        assert_eq!(w.metrics().expired, 1);
        // Purge path.
        let q = w.create_packet(lm(0), lm(1), None, false);
        w.set_now(SimTime::ZERO + DAY.mul(42));
        w.purge_expired();
        assert_eq!(w.packet(q).loc, PacketLoc::Expired);
    }

    #[test]
    fn loop_detection_via_station_revisit() {
        let mut w = world();
        let p = w.create_packet(lm(0), lm(2), None, true);
        w.node_arrive(n(0), lm(0));
        w.transfer_to_node(p, n(0)).unwrap();
        w.node_depart(n(0), lm(0));
        w.node_arrive(n(0), lm(1));
        let o1 = w.transfer_to_station(p, lm(1)).unwrap();
        assert!(!o1.loop_closed);
        w.transfer_to_node(p, n(0)).unwrap();
        w.node_depart(n(0), lm(1));
        w.node_arrive(n(0), lm(0));
        let o2 = w.transfer_to_station(p, lm(0)).unwrap();
        assert!(o2.loop_closed, "revisiting the source closes a loop");
    }

    #[test]
    fn dst_node_delivery() {
        let mut w = world();
        let p = w.create_packet(lm(0), lm(1), Some(n(2)), true);
        // Wrong node cannot claim it.
        w.node_arrive(n(0), lm(0));
        assert_eq!(
            w.deliver_to_dst_node(p, n(0)),
            Err(TransferError::NotColocated)
        );
        w.node_arrive(n(2), lm(0));
        w.deliver_to_dst_node(p, n(2)).unwrap();
        assert!(matches!(w.packet(p).loc, PacketLoc::Delivered(_)));
    }

    #[test]
    fn radio_budget_limits_station_transfers() {
        let cfg = SimConfig {
            radio_budget_per_unit: Some(1),
            ..SimConfig::default()
        };
        let mut w = World::new(cfg, 2, 2);
        w.node_arrive(n(0), lm(0));
        let a = w.create_packet(lm(0), lm(1), None, true);
        let b = w.create_packet(lm(0), lm(1), None, true);
        w.transfer_to_node(a, n(0)).unwrap();
        assert_eq!(w.transfer_to_node(b, n(0)), Err(TransferError::RadioBusy));
        assert_eq!(w.radio_budget_left(lm(0)), Some(0));
        w.reset_radio_budget();
        w.transfer_to_node(b, n(0)).unwrap();
    }

    #[test]
    fn table_exchange_accounting() {
        let mut w = world();
        w.record_table_exchange(100);
        assert!((w.metrics().maintenance_ops - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must cross subareas")]
    fn rejects_same_src_dst_packet() {
        let mut w = world();
        w.create_packet(lm(0), lm(0), None, false);
    }
}
