//! Trace-driven discrete-event DTN simulator.
//!
//! The simulator replays a mobility [`dtnflow_mobility::Trace`] as a stream
//! of node arrival/departure events, generates a packet workload, and lets
//! a routing algorithm (anything implementing [`Router`]) decide every
//! packet movement. The engine owns the mechanics the paper holds constant
//! across algorithms — node memory limits, packet TTLs, delivery detection,
//! cost accounting — so that DTN-FLOW and the five baselines are compared
//! under identical rules (§V-A.1).
//!
//! * [`world::World`] — simulation state and the transfer primitives;
//! * [`router::Router`] — the algorithm-facing event hooks;
//! * [`workload::Workload`] — packet generation schedules;
//! * [`faults`] — seeded fault plans (outages, churn, truncation,
//!   record loss) for resilience experiments;
//! * [`engine`] — the event loop ([`engine::run`],
//!   [`engine::run_with_faults`], [`engine::run_traced`]).
//!
//! Observability (DESIGN.md §9): attach a [`dtnflow_obs::TraceSink`] via
//! [`engine::run_traced`] and the world emits structured
//! [`dtnflow_obs::SimEvent`]s — contact, packet-lifecycle and fault
//! transitions — without perturbing outcomes.

#![forbid(unsafe_code)]
// Non-test code in this crate must not unwrap/expect (detlint P1);
// clippy enforces the same invariant at compile time.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod faults;
pub mod router;
pub mod store;
pub mod workload;
pub mod world;

pub use engine::{
    run, run_traced, run_traced_sharded, run_traced_sharded_dispatch, run_with_faults,
    run_with_faults_sharded, run_with_faults_sharded_dispatch, run_with_workload, SimOutcome,
    SimSession,
};
pub use faults::{FaultConfig, FaultPlan, NodeOutage, StationOutage};
pub use router::Router;
pub use store::PacketStore;
pub use workload::Workload;
pub use world::{LossReason, TransferError, TransferOutcome, World, WorldError, WorldView};

// Re-export the observability vocabulary so downstream crates can attach
// sinks without a direct dtnflow-obs dependency.
pub use dtnflow_obs::{EventBuffer, NoopSink, Recorder, ShardBuffers, SimEvent, TraceSink};

// Re-export the shard runtime vocabulary (DESIGN.md §13) so routers and
// harnesses can build plans/executors without a direct dtnflow-shard
// dependency.
pub use dtnflow_shard::{
    plan_window, Claim, DispatchMode, DispatchStats, ShardExec, ShardPlan, ShardPlanError,
    Sharding, WindowPlan,
};
