//! Packet workload generation (paper §V-A.1).
//!
//! Packets are generated "at the rate of `r` packets per landmark per day"
//! with uniformly random destination landmarks, starting after the warm-up
//! quarter of the trace. The deployment experiment (§V-C) instead sends
//! everything to a single sink (the library).

use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::LandmarkId;
use dtnflow_core::rngutil::rng_for;
use dtnflow_core::time::{SimDuration, SimTime};
use rand::Rng;

/// One scheduled packet generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenEvent {
    pub at: SimTime,
    pub src: LandmarkId,
    pub dst: LandmarkId,
}

/// A packet generation schedule, sorted by time.
#[derive(Debug, Clone)]
pub struct Workload {
    events: Vec<GenEvent>,
    warmup_end: SimTime,
}

impl Workload {
    /// Uniform workload: each landmark generates `cfg.packets_per_landmark
    /// _per_day` packets per day at uniformly random times in
    /// `[warmup_end, duration)`, each destined to a uniformly random
    /// *other* landmark.
    pub fn uniform(cfg: &SimConfig, num_landmarks: usize, duration: SimDuration) -> Self {
        Self::build(cfg, num_landmarks, duration, None, &[])
    }

    /// Uniform workload over the landmarks *not* listed in `excluded`.
    /// Excluded landmarks neither generate nor receive packets — used for
    /// infrastructure landmarks like the bus garage, which landmark
    /// selection (§IV-A.1) would never pick as a popular place.
    pub fn uniform_excluding(
        cfg: &SimConfig,
        num_landmarks: usize,
        duration: SimDuration,
        excluded: &[LandmarkId],
    ) -> Self {
        Self::build(cfg, num_landmarks, duration, None, excluded)
    }

    /// Sink workload (§V-C): every packet is destined to `sink`; the sink
    /// landmark itself generates none.
    pub fn sink(
        cfg: &SimConfig,
        num_landmarks: usize,
        duration: SimDuration,
        sink: LandmarkId,
    ) -> Self {
        Self::build(cfg, num_landmarks, duration, Some(sink), &[])
    }

    /// Explicit schedule: exactly these generations (sorted by time, then
    /// source, then destination). For tests and micro-scenarios that need
    /// full control over when each packet appears.
    pub fn from_events(mut events: Vec<GenEvent>, warmup_end: SimTime) -> Self {
        events.sort_by_key(|e| (e.at, e.src, e.dst));
        Workload { events, warmup_end }
    }

    fn build(
        cfg: &SimConfig,
        num_landmarks: usize,
        duration: SimDuration,
        sink: Option<LandmarkId>,
        excluded: &[LandmarkId],
    ) -> Self {
        let eligible: Vec<LandmarkId> = (0..num_landmarks)
            .map(LandmarkId::from)
            .filter(|l| !excluded.contains(l))
            .collect();
        assert!(eligible.len() > 1, "need at least two landmarks to route");
        let mut rng = rng_for(cfg.seed, "workload");
        let warmup_end = SimTime(((duration.secs() as f64) * cfg.warmup_fraction).round() as u64);
        let gen_span = duration
            .secs()
            .saturating_sub(warmup_end.secs())
            .saturating_sub(cfg.gen_tail_margin.secs());
        let gen_days = gen_span as f64 / 86_400.0;
        let per_landmark = (cfg.packets_per_landmark_per_day * gen_days).round() as usize;

        let mut events = Vec::with_capacity(per_landmark * eligible.len());
        for (i, &src) in eligible.iter().enumerate() {
            if sink == Some(src) {
                continue;
            }
            for _ in 0..per_landmark {
                let at = SimTime(warmup_end.secs() + rng.random_range(0..gen_span.max(1)));
                let dst = match sink {
                    Some(s) => s,
                    None => {
                        // Uniform over the other eligible landmarks.
                        let mut d = rng.random_range(0..eligible.len() - 1);
                        if d >= i {
                            d += 1;
                        }
                        eligible[d]
                    }
                };
                events.push(GenEvent { at, src, dst });
            }
        }
        events.sort_by_key(|e| (e.at, e.src, e.dst));
        Workload { events, warmup_end }
    }

    /// The scheduled generations, ascending by time.
    pub fn events(&self) -> &[GenEvent] {
        &self.events
    }

    /// When the warm-up period ends (first possible generation instant).
    pub fn warmup_end(&self) -> SimTime {
        self.warmup_end
    }

    /// Number of scheduled packets.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no packets are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::DAY;

    fn cfg() -> SimConfig {
        SimConfig {
            packets_per_landmark_per_day: 10.0,
            warmup_fraction: 0.25,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn respects_rate_and_warmup() {
        let w = Workload::uniform(&cfg(), 4, DAY.mul(8));
        // 6 post-warmup days x 10/landmark/day x 4 landmarks.
        assert_eq!(w.len(), 240);
        assert_eq!(w.warmup_end(), SimTime(2 * 86_400));
        assert!(w.events().iter().all(|e| e.at >= w.warmup_end()));
        assert!(w.events().iter().all(|e| e.at.secs() < 8 * 86_400));
    }

    #[test]
    fn destinations_never_equal_source() {
        let w = Workload::uniform(&cfg(), 4, DAY.mul(8));
        assert!(w.events().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn destinations_cover_all_landmarks() {
        let w = Workload::uniform(&cfg(), 4, DAY.mul(8));
        for d in 0..4u16 {
            assert!(
                w.events().iter().any(|e| e.dst == LandmarkId(d)),
                "landmark {d} never a destination"
            );
        }
    }

    #[test]
    fn events_sorted_by_time() {
        let w = Workload::uniform(&cfg(), 4, DAY.mul(8));
        assert!(w.events().windows(2).all(|p| p[0].at <= p[1].at));
    }

    #[test]
    fn sink_workload_targets_only_sink() {
        let sink = LandmarkId(0);
        let w = Workload::sink(&cfg(), 4, DAY.mul(8), sink);
        assert!(w.events().iter().all(|e| e.dst == sink));
        assert!(w.events().iter().all(|e| e.src != sink));
        // 3 non-sink landmarks generate.
        assert_eq!(w.len(), 180);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::uniform(&cfg(), 4, DAY.mul(8));
        let b = Workload::uniform(&cfg(), 4, DAY.mul(8));
        assert_eq!(a.events(), b.events());
        let c = Workload::uniform(&cfg().with_seed(8), 4, DAY.mul(8));
        assert_ne!(a.events(), c.events());
    }

    #[test]
    #[should_panic(expected = "at least two landmarks")]
    fn rejects_single_landmark() {
        Workload::uniform(&cfg(), 1, DAY.mul(8));
    }
}
