//! The algorithm-facing event interface.
//!
//! A [`Router`] receives the simulator's events and reacts by calling the
//! transfer primitives on the [`World`]. The engine guarantees:
//!
//! * `on_arrive` fires after the node is registered at the landmark (and,
//!   in no-station mode, after auto-delivery of its packets destined
//!   there);
//! * `on_encounter` fires once per (newcomer, already-present) pair, with
//!   the newcomer first — before `on_arrive`;
//! * `on_depart` fires while the node is still registered, so departure
//!   bookkeeping can inspect presence;
//! * `on_time_unit` fires at every multiple of `SimConfig::time_unit`,
//!   after expired packets are purged and the radio budget is reset;
//! * `on_timer` fires at (or after) the time passed to
//!   `World::schedule_timer`, with the same token.

use crate::world::World;
use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_shard::Sharding;

/// A DTN routing algorithm under simulation.
pub trait Router {
    /// Display name ("DTN-FLOW", "PROPHET", …).
    fn name(&self) -> &'static str;

    /// Whether this router stores packets at landmark stations (DTN-FLOW)
    /// rather than only on mobile nodes (the baselines). Controls where
    /// generated packets start and how delivery is detected.
    fn uses_stations(&self) -> bool {
        false
    }

    /// A node connected to a landmark.
    fn on_arrive(&mut self, world: &mut World, node: NodeId, lm: LandmarkId);

    /// A node is about to disconnect from a landmark.
    fn on_depart(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        let _ = (world, node, lm);
    }

    /// `newcomer` just connected to a landmark where `present` already is.
    fn on_encounter(
        &mut self,
        world: &mut World,
        newcomer: NodeId,
        present: NodeId,
        lm: LandmarkId,
    ) {
        let _ = (world, newcomer, present, lm);
    }

    /// A packet was generated (already placed pending / at its source
    /// station by the engine).
    fn on_packet_generated(&mut self, world: &mut World, pkt: PacketId);

    /// A measurement time unit boundary (§IV-C.1), `unit` counts from 0.
    fn on_time_unit(&mut self, world: &mut World, unit: u64) {
        let _ = (world, unit);
    }

    /// [`Router::on_time_unit`] under a shard runtime (DESIGN.md §13).
    ///
    /// The default ignores the runtime and delegates to `on_time_unit`
    /// — correct for every router, since a sharded run must be
    /// byte-identical to a sequential one anyway. Routers whose
    /// unit-boundary work decomposes per landmark (DTN-FLOW's table
    /// recompute and rebucketing) override this to fan the compute out
    /// over `shards` while keeping all commits in ascending landmark
    /// order.
    fn on_time_unit_sharded(&mut self, world: &mut World, unit: u64, shards: &Sharding<'_>) {
        let _ = shards;
        self.on_time_unit(world, unit);
    }

    /// An evenly spaced observation point (Fig. 8 snapshots).
    fn on_observe(&mut self, world: &mut World, idx: usize) {
        let _ = (world, idx);
    }

    /// A timer requested through `World::schedule_timer` fired.
    fn on_timer(&mut self, world: &mut World, token: u64) {
        let _ = (world, token);
    }

    // ---- fault-injection hooks (no-ops by default, so routers that
    // ---- ignore faults — the baselines — are byte-identical with or
    // ---- without an empty fault plan) ---------------------------------

    /// The station at `lm` just went down: it refuses all transfers and
    /// buffers nothing until [`Router::on_station_up`]. Packets it stored
    /// remain stranded inside.
    fn on_station_down(&mut self, world: &mut World, lm: LandmarkId) {
        let _ = (world, lm);
    }

    /// The station at `lm` recovered. A degradation-aware router should
    /// re-queue the packets stranded there.
    fn on_station_up(&mut self, world: &mut World, lm: LandmarkId) {
        let _ = (world, lm);
    }

    /// `node` failed (churn): by the time this fires it has been removed
    /// from the network and everything it carried is destroyed. `at` is
    /// the landmark it was at when it failed, if any — for router-side
    /// bookkeeping only; the node is no longer there.
    fn on_node_fail(&mut self, world: &mut World, node: NodeId, at: Option<LandmarkId>) {
        let _ = (world, node, at);
    }

    /// `node` recovered from churn; it rejoins the network at its next
    /// trace arrival.
    fn on_node_recover(&mut self, world: &mut World, node: NodeId) {
        let _ = (world, node);
    }
}
