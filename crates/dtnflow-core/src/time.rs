//! Simulation time.
//!
//! Time is measured in whole seconds since the start of the trace.
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span. Both are
//! newtypes over `u64` with saturating arithmetic so that "infinitely far in
//! the future" computations never wrap.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One second, the base unit.
pub const SECOND: SimDuration = SimDuration(1);
/// Sixty seconds.
pub const MINUTE: SimDuration = SimDuration(60);
/// Sixty minutes.
pub const HOUR: SimDuration = SimDuration(3_600);
/// Twenty-four hours.
pub const DAY: SimDuration = SimDuration(86_400);

/// An absolute instant in simulation time (seconds since trace start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// An instant later than every representable one.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Seconds since trace start.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Elapsed span since `earlier`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Which fixed-width window of length `unit` this instant falls in.
    /// Used to map instants to the paper's "time units" (§IV-C.1).
    #[inline]
    pub fn unit_index(self, unit: SimDuration) -> u64 {
        assert!(unit.0 > 0, "time unit must be positive");
        self.0 / unit.0
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// A span longer than every representable one (acts as infinity).
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Length in seconds.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Length in fractional minutes.
    #[inline]
    pub fn as_minutes(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Length in fractional hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Length in fractional days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.0 as f64 / 86_400.0
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// Construct from fractional days (rounded to whole seconds).
    #[inline]
    pub fn from_days(d: f64) -> Self {
        assert!(d >= 0.0 && d.is_finite(), "duration must be non-negative");
        SimDuration((d * 86_400.0).round() as u64)
    }

    /// Construct from fractional hours (rounded to whole seconds).
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        assert!(h >= 0.0 && h.is_finite(), "duration must be non-negative");
        SimDuration((h * 3_600.0).round() as u64)
    }

    /// Saturating scalar multiplication. Not the `Mul` trait: this
    /// saturates instead of overflowing, and a distinct name keeps that
    /// visible at call sites.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a non-negative float, saturating at the representable max.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k >= 0.0 && !k.is_nan(), "scale must be non-negative");
        let v = self.0 as f64 * k;
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let rem = self.0 % 86_400;
        let h = rem / 3_600;
        let m = (rem % 3_600) / 60;
        let s = rem % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400 {
            write!(f, "{:.2}d", self.as_days())
        } else if self.0 >= 3_600 {
            write!(f, "{:.2}h", self.as_hours())
        } else if self.0 >= 60 {
            write!(f, "{:.1}m", self.as_minutes())
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(SimTime::MAX + DAY, SimTime::MAX);
        assert_eq!(SimTime(5).since(SimTime(9)), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul(3), SimDuration::MAX);
    }

    #[test]
    fn unit_index_partitions_time() {
        let unit = DAY.mul(3);
        assert_eq!(SimTime::ZERO.unit_index(unit), 0);
        assert_eq!(SimTime(unit.0 - 1).unit_index(unit), 0);
        assert_eq!(SimTime(unit.0).unit_index(unit), 1);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_days(1.0), DAY);
        assert_eq!(SimDuration::from_hours(2.0), SimDuration(7_200));
        assert!((DAY.as_hours() - 24.0).abs() < 1e-12);
        assert!((HOUR.as_minutes() - 60.0).abs() < 1e-12);
        assert!((MINUTE.as_days() - 1.0 / 1_440.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(SimTime(90_061).to_string(), "d1+01:01:01");
        assert_eq!(SimDuration(30).to_string(), "30s");
        assert_eq!(SimDuration(90).to_string(), "1.5m");
        assert_eq!(DAY.mul(2).to_string(), "2.00d");
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        assert_eq!(HOUR.mul_f64(2.0), SimDuration(7_200));
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(HOUR.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn subtraction_of_instants_gives_span() {
        assert_eq!(SimTime(100) - SimTime(40), SimDuration(60));
    }
}
