//! Shared vocabulary for the DTN-FLOW reproduction.
//!
//! This crate holds the types every other crate in the workspace speaks:
//! entity identifiers ([`NodeId`], [`LandmarkId`], [`PacketId`]), simulation
//! time ([`SimTime`], [`SimDuration`]), the [`Packet`] record, planar
//! [`geometry`], run-level [`metrics`], and small deterministic random
//! sampling helpers used by the synthetic trace generators.
//!
//! Nothing here knows about routing or simulation mechanics; those live in
//! `dtnflow-sim`, `dtnflow-router` and `dtnflow-baselines`.

#![forbid(unsafe_code)]

pub mod config;
pub mod dense;
pub mod geometry;
pub mod ids;
pub mod metrics;
pub mod packet;
pub mod rankidx;
pub mod rngutil;
pub mod time;
pub mod wheel;

pub use config::SimConfig;
pub use dense::{DenseKey, DenseMap, DenseSet, LinkMatrix};
pub use geometry::Point;
pub use ids::{LandmarkId, NodeId, PacketId};
pub use metrics::{MetricsSummary, RunMetrics};
pub use packet::{Packet, PacketLoc};
pub use rankidx::{RankEntry, RankIndex};
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE, SECOND};
pub use wheel::{TimingWheel, WheelEntry};
