//! Deterministic random sampling helpers shared by the synthetic trace
//! generators and workloads.
//!
//! All simulation randomness flows through seeded [`rand::rngs::StdRng`]
//! instances so every experiment is reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from an experiment seed and a stream label,
/// so independent subsystems (workload, mobility, …) never share a stream.
pub fn rng_for(seed: u64, stream: &str) -> StdRng {
    // FNV-1a over the stream label, mixed into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stream.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// Sample a standard normal deviate via Box–Muller (avoids an extra
/// distribution crate).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Draw u1 in (0, 1] to keep ln() finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample a log-normal deviate with the given *linear-scale* median and
/// shape `sigma` (the σ of the underlying normal).
pub fn log_normal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "log-normal median must be positive");
    assert!(sigma >= 0.0, "log-normal sigma must be non-negative");
    median * (sigma * standard_normal(rng)).exp()
}

/// Pick an index with probability proportional to `weights[i]`. Weights may
/// be zero but must be non-negative, finite, and not all zero.
pub fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must be non-negative with a positive finite sum"
    );
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        debug_assert!(w >= 0.0, "negative weight");
        if target < w {
            return i;
        }
        target -= w;
    }
    // Floating-point slack: fall back to the last positive weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        // detlint: allow(P1, reason = "callers pass weight vectors with a positive total, checked above; an all-nonpositive vector cannot reach this line")
        .expect("at least one positive weight")
}

/// Zipf-like popularity weights for `n` items with exponent `s`:
/// `w_i = 1 / (i + 1)^s`. Used to give landmarks the skewed visiting
/// popularity observed in the traces (O1).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(s >= 0.0, "zipf exponent must be non-negative");
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Sample an exponential deviate with the given mean.
pub fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut a1 = rng_for(42, "workload");
        let mut a2 = rng_for(42, "workload");
        let mut b = rng_for(42, "mobility");
        let x1: u64 = a1.random();
        let x2: u64 = a2.random();
        let y: u64 = b.random();
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = rng_for(1, "normal");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn log_normal_median_is_respected() {
        let mut rng = rng_for(2, "lognormal");
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut rng, 100.0, 0.5)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!((median - 100.0).abs() < 10.0, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut rng = rng_for(3, "wchoice");
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive finite sum")]
    fn weighted_choice_rejects_all_zero() {
        let mut rng = rng_for(4, "wzero");
        weighted_choice(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(4, 1.0);
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        // s = 0 gives uniform weights.
        assert!(zipf_weights(3, 0.0)
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn exponential_mean_is_respected() {
        let mut rng = rng_for(5, "exp");
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 50.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean {mean}");
    }
}
