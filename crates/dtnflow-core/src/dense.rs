//! Dense-index containers for the hot paths.
//!
//! The simulator's keys are small dense integers ([`LandmarkId`] is a
//! `u16` index, [`NodeId`]/[`PacketId`] are `u32` indexes), so ordered
//! maps over them do not need a tree: a `Vec` slot per id gives O(1)
//! access and — because slots are laid out in id order — iteration that
//! is deterministic *by construction*, with no per-node heap allocation
//! and no pointer chasing. These containers exist to replace the
//! `BTreeMap`/`BTreeSet` hot-path storage while preserving its one
//! observable property: iteration in ascending key order.
//!
//! * [`DenseMap<K, V>`] — `Vec<Option<V>>` indexed by `K::index()`.
//! * [`DenseSet<K>`] — a sorted `Vec<K>`; membership by binary search,
//!   iteration in id order, contiguous in memory.
//! * [`LinkMatrix`] — a flat `n×n` `Vec<f64>` keyed `from * n + to`,
//!   for per-directed-link tables (EWMA bandwidth, Eq. 4).

use crate::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};
use std::marker::PhantomData;

/// A key that is (or wraps) a small dense integer index.
pub trait DenseKey: Copy + Ord {
    /// Largest index the key type can represent (checkpoint decoding
    /// rejects anything bigger before calling [`DenseKey::from_index`]).
    const MAX_INDEX: usize;
    /// The key's dense index.
    fn index(self) -> usize;
    /// Rebuild the key from its index (inverse of [`DenseKey::index`]).
    fn from_index(i: usize) -> Self;
}

impl DenseKey for LandmarkId {
    const MAX_INDEX: usize = u16::MAX as usize;
    #[inline]
    fn index(self) -> usize {
        LandmarkId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        LandmarkId::from(i)
    }
}

impl DenseKey for NodeId {
    const MAX_INDEX: usize = u32::MAX as usize;
    #[inline]
    fn index(self) -> usize {
        NodeId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        NodeId::from(i)
    }
}

impl DenseKey for PacketId {
    const MAX_INDEX: usize = u32::MAX as usize;
    #[inline]
    fn index(self) -> usize {
        PacketId::index(self)
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        PacketId::from(i)
    }
}

impl DenseKey for u16 {
    const MAX_INDEX: usize = u16::MAX as usize;
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        LandmarkId::from(i).0
    }
}

impl DenseKey for u32 {
    const MAX_INDEX: usize = u32::MAX as usize;
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        NodeId::from(i).0
    }
}

impl DenseKey for usize {
    const MAX_INDEX: usize = usize::MAX;
    #[inline]
    fn index(self) -> usize {
        self
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        i
    }
}

/// A map from a dense-integer key to `V`, backed by one slot per id.
///
/// Replaces `BTreeMap<K, V>` on hot paths: `get`/`insert`/`remove` are
/// O(1) slot accesses, and iteration walks the slots in ascending id
/// order — the same observable order a `BTreeMap` gives. Removing keeps
/// the slot allocated, so churny maps stop allocating once warm.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        DenseMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }
}

impl<K: DenseKey, V> DenseMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map with slots pre-allocated for ids `0..n`.
    pub fn with_index_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        DenseMap {
            slots,
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `v` at `k`, returning the previous value if any.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let i = k.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let old = self.slots[i].replace(v);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The value at `k`, if present.
    #[inline]
    pub fn get(&self, k: K) -> Option<&V> {
        self.slots.get(k.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the value at `k`, if present.
    #[inline]
    pub fn get_mut(&mut self, k: K) -> Option<&mut V> {
        self.slots.get_mut(k.index()).and_then(Option::as_mut)
    }

    /// Whether `k` has a value.
    #[inline]
    pub fn contains_key(&self, k: K) -> bool {
        self.get(k).is_some()
    }

    /// Remove and return the value at `k`. The slot stays allocated.
    pub fn remove(&mut self, k: K) -> Option<V> {
        let old = self.slots.get_mut(k.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// The value at `k`, inserting `make()` first when absent.
    pub fn get_or_insert_with(&mut self, k: K, make: impl FnOnce() -> V) -> &mut V {
        let i = k.index();
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some(make());
            self.len += 1;
        }
        // The slot was just filled when it was empty; this borrow can
        // only be of a present value.
        match slot.as_mut() {
            Some(v) => v,
            // detlint: allow(P1, reason = "the arm above just filled this exact slot; the None branch is unreachable by construction")
            None => unreachable!("slot filled above"),
        }
    }

    /// Remove every entry. Slot storage is kept for reuse.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (K::from_index(i), v)))
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Mutable values in ascending key order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Checkpoint encoding (DESIGN.md §11): present entries in ascending
    /// key order, values via `enc`. Canonical — slot capacity (trailing
    /// empty slots) is not observable and is not preserved.
    pub fn encode_with(&self, w: &mut Writer, mut enc: impl FnMut(&mut Writer, &V)) {
        w.put_usize(self.len);
        for (k, v) in self.iter() {
            w.put_u64(k.index() as u64);
            enc(w, v);
        }
    }

    /// Inverse of [`DenseMap::encode_with`]. Rejects out-of-order keys so
    /// decoding then re-encoding is byte-stable.
    pub fn decode_with<E>(
        r: &mut Reader<'_>,
        mut dec: impl FnMut(&mut Reader<'_>) -> Result<V, E>,
    ) -> Result<Self, SnapshotError>
    where
        E: Into<SnapshotError>,
    {
        const CTX: &str = "DenseMap";
        let n = r.seq_len(CTX)?;
        let mut map = Self::new();
        let mut prev: Option<usize> = None;
        for _ in 0..n {
            let idx = r.usize(CTX)?;
            if idx > K::MAX_INDEX || prev.is_some_and(|p| idx <= p) {
                return Err(SnapshotError::Corrupt { context: CTX });
            }
            prev = Some(idx);
            let v = dec(r).map_err(Into::into)?;
            map.insert(K::from_index(idx), v);
        }
        Ok(map)
    }
}

impl<K: DenseKey, V: Default> DenseMap<K, V> {
    /// The value at `k`, inserting `V::default()` first when absent.
    pub fn get_or_default(&mut self, k: K) -> &mut V {
        self.get_or_insert_with(k, V::default)
    }
}

impl<K: DenseKey, V> std::ops::Index<K> for DenseMap<K, V> {
    type Output = V;

    /// Panics when `k` has no entry, like `BTreeMap`'s `Index`.
    fn index(&self, k: K) -> &V {
        match self.get(k) {
            Some(v) => v,
            // detlint: allow(P1, reason = "Index is documented to panic on absent keys, matching BTreeMap's Index contract")
            None => panic!("no entry for key index {}", k.index()),
        }
    }
}

/// A set of dense-integer keys as a sorted `Vec`.
///
/// Replaces `BTreeSet<K>` on hot paths. Membership is a binary search;
/// insert/remove shift the tail (sets here are small per-bucket packet
/// queues); iteration is a contiguous ascending scan — the same
/// observable order a `BTreeSet` gives, without per-element nodes.
/// `clear` keeps the allocation, so reused buckets stop allocating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseSet<K> {
    sorted: Vec<K>,
}

impl<K> Default for DenseSet<K> {
    fn default() -> Self {
        DenseSet { sorted: Vec::new() }
    }
}

impl<K: DenseKey> DenseSet<K> {
    /// An empty set.
    pub fn new() -> Self {
        DenseSet { sorted: Vec::new() }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Add `k`; returns whether it was newly inserted.
    pub fn insert(&mut self, k: K) -> bool {
        match self.sorted.binary_search(&k) {
            Ok(_) => false,
            Err(pos) => {
                self.sorted.insert(pos, k);
                true
            }
        }
    }

    /// Remove `k`; returns whether it was present.
    pub fn remove(&mut self, k: K) -> bool {
        match self.sorted.binary_search(&k) {
            Ok(pos) => {
                self.sorted.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `k` is a member.
    pub fn contains(&self, k: K) -> bool {
        self.sorted.binary_search(&k).is_ok()
    }

    /// Members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.sorted.iter().copied()
    }

    /// Keep only members satisfying `keep`, preserving order. One linear
    /// pass — cheaper than collecting victims and removing them one by
    /// one, which re-shifts the tail per removal.
    pub fn retain(&mut self, mut keep: impl FnMut(K) -> bool) {
        self.sorted.retain(|&k| keep(k));
    }

    /// The members as an ascending slice.
    pub fn as_slice(&self) -> &[K] {
        &self.sorted
    }

    /// Remove all members, keeping the allocation.
    pub fn clear(&mut self) {
        self.sorted.clear();
    }

    /// Checkpoint encoding: the members as ascending indexes.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.sorted.len());
        for k in &self.sorted {
            w.put_u64(k.index() as u64);
        }
    }

    /// Inverse of [`DenseSet::encode`]; rejects unsorted or duplicate
    /// members so re-encoding is byte-stable.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "DenseSet";
        let n = r.seq_len(CTX)?;
        let mut sorted = Vec::with_capacity(n);
        let mut prev: Option<usize> = None;
        for _ in 0..n {
            let idx = r.usize(CTX)?;
            if idx > K::MAX_INDEX || prev.is_some_and(|p| idx <= p) {
                return Err(SnapshotError::Corrupt { context: CTX });
            }
            prev = Some(idx);
            sorted.push(K::from_index(idx));
        }
        Ok(DenseSet { sorted })
    }
}

/// A flat `n×n` table of `f64` values over directed landmark links,
/// stored row-major as `from * n + to`.
///
/// Cells are `NaN` until written, so "absent" needs no `Option`
/// discriminant and present-cell iteration (ascending `(from, to)`,
/// matching `BTreeMap<(u16, u16), _>` order) needs no tree. The matrix
/// grows on demand when a larger id appears.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkMatrix {
    n: usize,
    cells: Vec<f64>,
}

impl LinkMatrix {
    /// An empty matrix; it grows as links are set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A matrix covering ids `0..n`, all cells absent.
    pub fn with_landmarks(n: usize) -> Self {
        LinkMatrix {
            n,
            cells: vec![f64::NAN; n * n],
        }
    }

    /// A matrix covering ids `0..n` with every cell present at `value`
    /// (for tables where every link has a meaningful zero, like the
    /// EWMA bandwidth fold).
    pub fn filled(n: usize, value: f64) -> Self {
        LinkMatrix {
            n,
            cells: vec![value; n * n],
        }
    }

    /// The current side length (one past the largest covered id).
    pub fn side(&self) -> usize {
        self.n
    }

    /// Grow to cover ids `0..n`, preserving existing cells.
    pub fn grow(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        let mut cells = vec![f64::NAN; n * n];
        for from in 0..self.n {
            let (old, new) = (from * self.n, from * n);
            cells[new..new + self.n].copy_from_slice(&self.cells[old..old + self.n]);
        }
        self.n = n;
        self.cells = cells;
    }

    /// Write the value of the directed link `from → to`, growing the
    /// matrix when needed.
    pub fn set(&mut self, from: u16, to: u16, value: f64) {
        let need = (from.max(to) as usize) + 1;
        if need > self.n {
            self.grow(need);
        }
        self.cells[from as usize * self.n + to as usize] = value;
    }

    /// Raw read of `from → to` without the absence check; out-of-range
    /// and never-written cells read as `NaN`. For matrices built with
    /// [`LinkMatrix::filled`] every in-range cell is a plain value.
    #[inline]
    pub fn at(&self, from: u16, to: u16) -> f64 {
        let (f, t) = (from as usize, to as usize);
        if f >= self.n || t >= self.n {
            return f64::NAN;
        }
        self.cells[f * self.n + t]
    }

    /// The flat row-major cells (`from * side + to`).
    pub fn as_slice(&self) -> &[f64] {
        &self.cells
    }

    /// Mutable flat row-major cells, for whole-table folds.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.cells
    }

    /// The value of `from → to`, if it was ever written.
    pub fn get(&self, from: u16, to: u16) -> Option<f64> {
        let (f, t) = (from as usize, to as usize);
        if f >= self.n || t >= self.n {
            return None;
        }
        let v = self.cells[f * self.n + t];
        (!v.is_nan()).then_some(v)
    }

    /// Number of present (written) cells.
    pub fn len(&self) -> usize {
        self.cells.iter().filter(|v| !v.is_nan()).count()
    }

    /// True when no cell was ever written.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().all(|v| v.is_nan())
    }

    /// Checkpoint encoding: side length plus every cell as raw IEEE-754
    /// bits (`NaN` "absent" markers survive byte-exactly).
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n);
        for &v in &self.cells {
            w.put_f64(v);
        }
    }

    /// Inverse of [`LinkMatrix::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "LinkMatrix";
        let n = r.usize(CTX)?;
        let cells_len = n
            .checked_mul(n)
            .ok_or(SnapshotError::Corrupt { context: CTX })?;
        let mut cells = Vec::with_capacity(cells_len.min(r.remaining() / 8 + 1));
        for _ in 0..cells_len {
            cells.push(r.f64(CTX)?);
        }
        Ok(LinkMatrix { n, cells })
    }

    /// Present cells in ascending `(from, to)` order — the iteration
    /// order of the `BTreeMap<(u16, u16), f64>` this type replaces.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16, f64)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|&(_, v)| !v.is_nan())
            .map(|(i, &v)| {
                let from = LandmarkId::from(i / self.n).0;
                let to = LandmarkId::from(i % self.n).0;
                (from, to, v)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_map_basic_ops_and_order() {
        let mut m: DenseMap<LandmarkId, &str> = DenseMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(LandmarkId(5), "five"), None);
        assert_eq!(m.insert(LandmarkId(1), "one"), None);
        assert_eq!(m.insert(LandmarkId(5), "FIVE"), Some("five"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(LandmarkId(5)), Some(&"FIVE"));
        assert_eq!(m.get(LandmarkId(0)), None);
        assert_eq!(m.get(LandmarkId(999)), None);
        // Iteration ascends by id regardless of insertion order.
        let keys: Vec<u16> = m.keys().map(|k| k.0).collect();
        assert_eq!(keys, vec![1, 5]);
        assert_eq!(m.remove(LandmarkId(1)), Some("one"));
        assert_eq!(m.remove(LandmarkId(1)), None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert!(m.is_empty() && m.get(LandmarkId(5)).is_none());
    }

    #[test]
    fn dense_map_get_or_default_counts() {
        let mut m: DenseMap<u16, u64> = DenseMap::new();
        *m.get_or_default(3) += 1;
        *m.get_or_default(3) += 1;
        *m.get_or_default(0) += 1;
        assert_eq!(m.get(3), Some(&2));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(0, &1), (3, &2)]);
    }

    #[test]
    fn dense_map_values_mut_in_key_order() {
        let mut m: DenseMap<u32, i32> = DenseMap::with_index_capacity(8);
        m.insert(6, 60);
        m.insert(2, 20);
        for v in m.values_mut() {
            *v += 1;
        }
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![21, 61]);
    }

    #[test]
    fn dense_set_matches_btreeset_semantics() {
        let mut s: DenseSet<PacketId> = DenseSet::new();
        assert!(s.insert(PacketId(7)));
        assert!(s.insert(PacketId(2)));
        assert!(!s.insert(PacketId(7)));
        assert!(s.contains(PacketId(2)));
        assert!(!s.contains(PacketId(3)));
        let got: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(got, vec![2, 7]);
        assert!(s.remove(PacketId(2)));
        assert!(!s.remove(PacketId(2)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn link_matrix_layout_is_from_times_n_plus_to() {
        let mut m = LinkMatrix::with_landmarks(3);
        assert!(m.is_empty());
        m.set(1, 2, 0.5);
        m.set(0, 1, 0.25);
        m.set(1, 2, 0.75); // overwrite
        assert_eq!(m.get(1, 2), Some(0.75));
        assert_eq!(m.get(2, 1), None);
        assert_eq!(m.len(), 2);
        // Ascending (from, to): (0,1) before (1,2).
        let got: Vec<(u16, u16, f64)> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 0.25), (1, 2, 0.75)]);
    }

    #[test]
    fn link_matrix_grows_preserving_cells() {
        let mut m = LinkMatrix::new();
        m.set(0, 1, 1.0);
        assert_eq!(m.side(), 2);
        m.set(4, 0, 2.0); // forces growth to 5×5
        assert_eq!(m.side(), 5);
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(4, 0), Some(2.0));
        assert_eq!(m.get(3, 3), None);
        let got: Vec<(u16, u16, f64)> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 1.0), (4, 0, 2.0)]);
    }

    #[test]
    fn key_roundtrips() {
        assert_eq!(NodeId::from_index(4).index(), 4);
        assert_eq!(LandmarkId::from_index(9).index(), 9);
        assert_eq!(PacketId::from_index(1).index(), 1);
        assert_eq!(<u16 as DenseKey>::from_index(3), 3u16);
        assert_eq!(<u32 as DenseKey>::from_index(5), 5u32);
        assert_eq!(<usize as DenseKey>::from_index(6), 6usize);
    }
}
