//! Strongly-typed identifiers for the three entity kinds in a DTN-FLOW
//! network: mobile nodes, landmarks (static stations), and packets.
//!
//! All three are thin newtypes over integer indices so they can be used to
//! index dense `Vec`-based tables without hashing.

use std::fmt;

/// Identifier of a mobile node (a person, bus, phone, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a landmark: a popular place hosting a static station and
/// representing one subarea of the network (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LandmarkId(pub u16);

/// Identifier of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u32);

impl NodeId {
    /// The node's dense index, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LandmarkId {
    /// The landmark's dense index, for indexing per-landmark tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PacketId {
    /// The packet's dense index, for indexing the global packet table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        // detlint: allow(P1, reason = "id construction from trusted dense indexes; overflow means the scenario exceeds the id space, a configuration bug")
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }
}

impl From<usize> for LandmarkId {
    fn from(i: usize) -> Self {
        // detlint: allow(P1, reason = "id construction from trusted dense indexes; overflow means the scenario exceeds the id space, a configuration bug")
        LandmarkId(u16::try_from(i).expect("landmark index exceeds u16"))
    }
}

impl From<usize> for PacketId {
    fn from(i: usize) -> Self {
        // detlint: allow(P1, reason = "id construction from trusted dense indexes; overflow means the scenario exceeds the id space, a configuration bug")
        PacketId(u32::try_from(i).expect("packet index exceeds u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LandmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Iterator over all landmark ids `l0..l<count>`.
pub fn all_landmarks(count: usize) -> impl Iterator<Item = LandmarkId> {
    (0..count).map(LandmarkId::from)
}

/// Iterator over all node ids `n0..n<count>`.
pub fn all_nodes(count: usize) -> impl Iterator<Item = NodeId> {
    (0..count).map(NodeId::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        assert_eq!(NodeId::from(7usize).index(), 7);
        assert_eq!(LandmarkId::from(3usize).index(), 3);
        assert_eq!(PacketId::from(99usize).index(), 99);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LandmarkId(2).to_string(), "l2");
        assert_eq!(PacketId(11).to_string(), "p11");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LandmarkId(0) < LandmarkId(10));
    }

    #[test]
    fn all_landmarks_enumerates_in_order() {
        let ls: Vec<_> = all_landmarks(3).collect();
        assert_eq!(ls, vec![LandmarkId(0), LandmarkId(1), LandmarkId(2)]);
    }

    #[test]
    fn all_nodes_enumerates_in_order() {
        let ns: Vec<_> = all_nodes(2).collect();
        assert_eq!(ns, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "landmark index exceeds u16")]
    fn landmark_overflow_panics() {
        let _ = LandmarkId::from(70_000usize);
    }
}
