//! Shared experiment configuration.
//!
//! Defaults mirror the paper's trace-driven experiment settings (§V-A.1):
//! 1 kB packets, 2000 kB node memory, packets generated at 500 per landmark
//! per day with uniformly random destination landmarks, the first quarter of
//! the trace used as a routing-table warm-up, and an upload cap of 50
//! packets per contact (§IV-D.5 step 3).

use crate::time::{SimDuration, DAY};

/// Configuration for one simulation run. Construct with
/// [`SimConfig::default`] and adjust fields, or use the named-trace
/// constructors.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Size of every packet in bytes (`S` in the paper). Default 1024.
    pub packet_size: u64,
    /// Memory of every mobile node in bytes (`M`). Default 2 048 000
    /// (2000 kB).
    pub node_memory: u64,
    /// Packet time-to-live. Default 20 days (the DART setting).
    pub ttl: SimDuration,
    /// The measurement/update time unit `T` (§IV-C.1). Default 3 days (the
    /// DART setting).
    pub time_unit: SimDuration,
    /// Packet generation rate per landmark per day. Default 500.
    pub packets_per_landmark_per_day: f64,
    /// Fraction of the trace used as warm-up before packets are generated.
    /// Default 0.25 ("the first 1/4 part of the two traces").
    pub warmup_fraction: f64,
    /// Stop generating packets this long before the trace ends, so every
    /// packet gets its full TTL window. Zero (the default) matches the
    /// comparative experiments, where the truncated tail affects all
    /// methods identically; the deployment experiment sets it to the TTL
    /// because its absolute success rate is the reported artifact.
    pub gen_tail_margin: SimDuration,
    /// Maintenance-cost accounting: a routing/utility table with `n` entries
    /// costs `n / entries_per_packet` forwarding-op equivalents. Default 50.
    pub entries_per_packet: usize,
    /// Maximum packets moved landmark→node per contact (`K`). Default 50.
    pub upload_cap: usize,
    /// Per-landmark radio budget in packets per time unit. `None` (the
    /// default) leaves transfers bounded only by memory and `upload_cap`,
    /// matching the paper's trace experiments; `Some(_)` activates the
    /// §IV-D.5 uplink/downlink scheduler.
    pub radio_budget_per_unit: Option<u64>,
    /// Number of evenly spaced observation points at which routers may
    /// snapshot internal state (Fig. 8 uses 10). Default 0.
    pub observe_points: usize,
    /// Seed for the workload generator (packet times and destinations).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            packet_size: 1_024,
            node_memory: 2_000 * 1_024,
            ttl: DAY.mul(20),
            time_unit: DAY.mul(3),
            packets_per_landmark_per_day: 500.0,
            warmup_fraction: 0.25,
            gen_tail_margin: SimDuration::ZERO,
            entries_per_packet: 50,
            upload_cap: 50,
            radio_budget_per_unit: None,
            observe_points: 0,
            seed: 0xD7F1_0001,
        }
    }
}

impl SimConfig {
    /// The paper's DART (campus) experiment settings: TTL 20 days, time unit
    /// 3 days.
    pub fn dart() -> Self {
        SimConfig::default()
    }

    /// The paper's DNET (bus) experiment settings: TTL 4 days, time unit
    /// 0.5 days.
    pub fn dnet() -> Self {
        SimConfig {
            ttl: DAY.mul(4),
            time_unit: SimDuration::from_days(0.5),
            ..SimConfig::default()
        }
    }

    /// The campus deployment settings (§V-C): 1 kB packets, 50 kB node
    /// memory, TTL 3 days, time unit 12 h, 75 packets per landmark per day.
    pub fn deployment() -> Self {
        SimConfig {
            node_memory: 50 * 1_024,
            ttl: DAY.mul(3),
            time_unit: SimDuration::from_hours(12.0),
            packets_per_landmark_per_day: 75.0,
            ..SimConfig::default()
        }
    }

    /// How many whole packets fit in one node's memory (`M / S`).
    pub fn packets_per_node(&self) -> u64 {
        assert!(self.packet_size > 0, "packet size must be positive");
        self.node_memory / self.packet_size
    }

    /// Set the node memory in kB (the unit the paper sweeps in Figs. 11/12).
    pub fn with_memory_kb(mut self, kb: u64) -> Self {
        self.node_memory = kb * 1_024;
        self
    }

    /// Set the packet rate (the paper sweeps 100..=1000 in Figs. 13/14).
    pub fn with_packet_rate(mut self, rate: f64) -> Self {
        self.packets_per_landmark_per_day = rate;
        self
    }

    /// Set the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.packet_size == 0 {
            return Err("packet_size must be positive".into());
        }
        if self.node_memory < self.packet_size {
            return Err("node_memory must hold at least one packet".into());
        }
        if self.time_unit == SimDuration::ZERO {
            return Err("time_unit must be positive".into());
        }
        if self.ttl == SimDuration::ZERO {
            return Err("ttl must be positive".into());
        }
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err("warmup_fraction must be in [0, 1)".into());
        }
        if self.packets_per_landmark_per_day < 0.0 {
            return Err("packet rate must be non-negative".into());
        }
        if self.entries_per_packet == 0 {
            return Err("entries_per_packet must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.packet_size, 1_024);
        assert_eq!(c.node_memory, 2_048_000);
        assert_eq!(c.ttl, DAY.mul(20));
        assert_eq!(c.time_unit, DAY.mul(3));
        assert_eq!(c.packets_per_node(), 2_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn dnet_settings() {
        let c = SimConfig::dnet();
        assert_eq!(c.ttl, DAY.mul(4));
        assert_eq!(c.time_unit, SimDuration::from_days(0.5));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn deployment_settings() {
        let c = SimConfig::deployment();
        assert_eq!(c.node_memory, 51_200);
        assert_eq!(c.packets_per_node(), 50);
        assert_eq!(c.ttl, DAY.mul(3));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_helpers() {
        let c = SimConfig::default()
            .with_memory_kb(1_200)
            .with_packet_rate(100.0)
            .with_seed(7);
        assert_eq!(c.node_memory, 1_228_800);
        assert_eq!(c.packets_per_landmark_per_day, 100.0);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = SimConfig {
            node_memory: 10,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            warmup_fraction: 1.0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            time_unit: SimDuration::ZERO,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SimConfig {
            entries_per_packet: 0,
            ..SimConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
