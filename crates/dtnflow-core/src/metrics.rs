//! Run-level metrics matching the paper's evaluation metrics (§V-A.1):
//! success rate, average delay, forwarding cost and overall (total) cost.

use crate::time::SimDuration;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Counters accumulated while a simulation runs.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Packets generated after warm-up.
    pub generated: u64,
    /// Packets delivered to their destination landmark within TTL.
    pub delivered: u64,
    /// Packets dropped because their TTL elapsed.
    pub expired: u64,
    /// End-to-end delays of delivered packets, in seconds.
    pub delays: Vec<u64>,
    /// Packet forwarding operations (every node↔node or node↔landmark
    /// packet transfer counts one).
    pub forwarding_ops: u64,
    /// Routing-information forwarding cost, in forwarding-op equivalents
    /// (a table with `n` entries costs `n / entries_per_packet`).
    pub maintenance_ops: f64,
    /// Packets destroyed by station outages (generated at a down station,
    /// or dropped after exhausting their retry budget at a failed one).
    pub lost_to_outage: u64,
    /// Packets destroyed because their carrier node failed mid-route.
    pub lost_to_churn: u64,
    /// Re-queue/retry operations on packets stranded by a fault.
    pub retries: u64,
    /// For each station outage that ended, seconds from the station coming
    /// back up until it completed its first packet transfer again.
    pub recovery_secs: Vec<u64>,
}

impl RunMetrics {
    /// Record a delivery with the given end-to-end delay.
    pub fn record_delivery(&mut self, delay: SimDuration) {
        self.delivered += 1;
        self.delays.push(delay.secs());
    }

    /// Record a TTL expiry.
    pub fn record_expiry(&mut self) {
        self.expired += 1;
    }

    /// Record one packet forwarding operation.
    pub fn record_forward(&mut self) {
        self.forwarding_ops += 1;
    }

    /// Record the exchange of a routing/utility table with `entries`
    /// entries, where `entries_per_packet` entries fit one packet-equivalent.
    pub fn record_table_exchange(&mut self, entries: usize, entries_per_packet: usize) {
        assert!(entries_per_packet > 0, "entries_per_packet must be > 0");
        self.maintenance_ops += entries as f64 / entries_per_packet as f64;
    }

    /// Record a packet destroyed by a station outage.
    pub fn record_lost_to_outage(&mut self) {
        self.lost_to_outage += 1;
    }

    /// Record a packet destroyed by its carrier failing.
    pub fn record_lost_to_churn(&mut self) {
        self.lost_to_churn += 1;
    }

    /// Record one re-queue/retry of a fault-stranded packet.
    pub fn record_retry(&mut self) {
        self.retries += 1;
    }

    /// Record how long a station took to move its first packet after an
    /// outage ended.
    pub fn record_recovery(&mut self, secs: SimDuration) {
        self.recovery_secs.push(secs.secs());
    }

    /// Packets destroyed by injected faults (outage + churn).
    pub fn lost(&self) -> u64 {
        self.lost_to_outage + self.lost_to_churn
    }

    /// Mean post-outage recovery time, seconds. Zero when no outage ended
    /// (or none recovered before the run finished).
    pub fn average_recovery_secs(&self) -> f64 {
        if self.recovery_secs.is_empty() {
            0.0
        } else {
            self.recovery_secs.iter().map(|&d| d as f64).sum::<f64>()
                / self.recovery_secs.len() as f64
        }
    }

    /// Fraction of generated packets delivered within TTL.
    pub fn success_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Mean delay of delivered packets, seconds. Zero when none delivered.
    pub fn average_delay_secs(&self) -> f64 {
        if self.delays.is_empty() {
            0.0
        } else {
            self.delays.iter().map(|&d| d as f64).sum::<f64>() / self.delays.len() as f64
        }
    }

    /// Overall average delay over *all* generated packets, counting each
    /// undelivered packet as `undelivered_as` (the paper's "O. Delay" in
    /// Table VII uses the experiment duration).
    pub fn overall_average_delay_secs(&self, undelivered_as: SimDuration) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        let undelivered = self.generated - self.delivered;
        let total: f64 = self.delays.iter().map(|&d| d as f64).sum::<f64>()
            + undelivered as f64 * undelivered_as.secs() as f64;
        total / self.generated as f64
    }

    /// Forwarding cost plus maintenance cost (the paper's "total cost").
    pub fn total_cost(&self) -> f64 {
        self.forwarding_ops as f64 + self.maintenance_ops
    }

    /// Five-number summary of delivery delays (min, q1, mean, q3, max), as
    /// plotted in Figs. 6(b) and 16(a). `None` when nothing was delivered.
    pub fn delay_summary(&self) -> Option<FiveNum> {
        FiveNum::of(&self.delays.iter().map(|&d| d as f64).collect::<Vec<_>>())
    }

    /// Checkpoint encoding (DESIGN.md §11): every field in declaration
    /// order. `maintenance_ops` travels as raw IEEE-754 bits so the
    /// accumulated float is restored bit-exactly.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.generated);
        w.put_u64(self.delivered);
        w.put_u64(self.expired);
        w.put_usize(self.delays.len());
        for &d in &self.delays {
            w.put_u64(d);
        }
        w.put_u64(self.forwarding_ops);
        w.put_f64(self.maintenance_ops);
        w.put_u64(self.lost_to_outage);
        w.put_u64(self.lost_to_churn);
        w.put_u64(self.retries);
        w.put_usize(self.recovery_secs.len());
        for &s in &self.recovery_secs {
            w.put_u64(s);
        }
    }

    /// Inverse of [`RunMetrics::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<RunMetrics, SnapshotError> {
        const CTX: &str = "RunMetrics";
        let generated = r.u64(CTX)?;
        let delivered = r.u64(CTX)?;
        let expired = r.u64(CTX)?;
        let n = r.seq_len("RunMetrics.delays")?;
        let mut delays = Vec::with_capacity(n);
        for _ in 0..n {
            delays.push(r.u64(CTX)?);
        }
        let forwarding_ops = r.u64(CTX)?;
        let maintenance_ops = r.f64(CTX)?;
        let lost_to_outage = r.u64(CTX)?;
        let lost_to_churn = r.u64(CTX)?;
        let retries = r.u64(CTX)?;
        let n = r.seq_len("RunMetrics.recovery_secs")?;
        let mut recovery_secs = Vec::with_capacity(n);
        for _ in 0..n {
            recovery_secs.push(r.u64(CTX)?);
        }
        Ok(RunMetrics {
            generated,
            delivered,
            expired,
            delays,
            forwarding_ops,
            maintenance_ops,
            lost_to_outage,
            lost_to_churn,
            retries,
            recovery_secs,
        })
    }

    /// Condense into a plain-old-data summary row.
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            generated: self.generated,
            delivered: self.delivered,
            expired: self.expired,
            success_rate: self.success_rate(),
            average_delay_secs: self.average_delay_secs(),
            forwarding_ops: self.forwarding_ops,
            maintenance_ops: self.maintenance_ops,
            total_cost: self.total_cost(),
            lost_to_outage: self.lost_to_outage,
            lost_to_churn: self.lost_to_churn,
            retries: self.retries,
            average_recovery_secs: self.average_recovery_secs(),
        }
    }
}

/// Flat summary of a run, suitable for table rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSummary {
    pub generated: u64,
    pub delivered: u64,
    pub expired: u64,
    pub success_rate: f64,
    pub average_delay_secs: f64,
    pub forwarding_ops: u64,
    pub maintenance_ops: f64,
    pub total_cost: f64,
    pub lost_to_outage: u64,
    pub lost_to_churn: u64,
    pub retries: u64,
    pub average_recovery_secs: f64,
}

/// Minimum, first quartile, mean, third quartile and maximum of a sample —
/// the summary the paper plots for prediction accuracy and delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    pub min: f64,
    pub q1: f64,
    pub mean: f64,
    pub q3: f64,
    pub max: f64,
}

impl FiveNum {
    /// Compute the summary; `None` on an empty sample. NaN values are
    /// skipped (an all-NaN sample is treated as empty).
    pub fn of(sample: &[f64]) -> Option<FiveNum> {
        let mut s: Vec<f64> = sample.iter().copied().filter(|v| !v.is_nan()).collect();
        if s.is_empty() {
            return None;
        }
        s.sort_by(f64::total_cmp);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        Some(FiveNum {
            min: s[0],
            q1: quantile_sorted(&s, 0.25),
            mean,
            q3: quantile_sorted(&s, 0.75),
            max: s[s.len() - 1],
        })
    }
}

/// Linear-interpolation quantile of an ascending-sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    #[test]
    fn success_rate_and_delay() {
        let mut m = RunMetrics {
            generated: 4,
            ..RunMetrics::default()
        };
        m.record_delivery(HOUR);
        m.record_delivery(HOUR.mul(3));
        m.record_expiry();
        assert!((m.success_rate() - 0.5).abs() < 1e-12);
        assert!((m.average_delay_secs() - 7_200.0).abs() < 1e-9);
        assert_eq!(m.expired, 1);
    }

    #[test]
    fn overall_delay_counts_failures() {
        let mut m = RunMetrics {
            generated: 2,
            ..RunMetrics::default()
        };
        m.record_delivery(HOUR);
        let o = m.overall_average_delay_secs(HOUR.mul(10));
        assert!((o - (3_600.0 + 36_000.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn costs_accumulate() {
        let mut m = RunMetrics::default();
        m.record_forward();
        m.record_forward();
        m.record_table_exchange(100, 50);
        assert_eq!(m.forwarding_ops, 2);
        assert!((m.maintenance_ops - 2.0).abs() < 1e-12);
        assert!((m.total_cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.success_rate(), 0.0);
        assert_eq!(m.average_delay_secs(), 0.0);
        assert!(m.delay_summary().is_none());
        assert_eq!(m.overall_average_delay_secs(HOUR), 0.0);
    }

    #[test]
    fn five_num_summary() {
        let f = FiveNum::of(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 5.0);
        assert!((f.mean - 3.0).abs() < 1e-12);
        assert!((f.q1 - 2.0).abs() < 1e-12);
        assert!((f.q3 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn five_num_skips_nan() {
        // NaN entries are ignored rather than panicking the percentile path.
        let f = FiveNum::of(&[f64::NAN, 4.0, 1.0, f64::NAN, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 5.0);
        assert!((f.mean - 3.0).abs() < 1e-12);
        assert!(FiveNum::of(&[f64::NAN, f64::NAN]).is_none());
        assert!(FiveNum::of(&[]).is_none());
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [0.0, 10.0];
        assert!((quantile_sorted(&s, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[7.0], 0.9), 7.0);
        assert_eq!(quantile_sorted(&s, 0.0), 0.0);
        assert_eq!(quantile_sorted(&s, 1.0), 10.0);
    }

    #[test]
    fn summary_row_matches_counters() {
        let mut m = RunMetrics {
            generated: 10,
            ..RunMetrics::default()
        };
        m.record_delivery(HOUR);
        m.record_forward();
        let s = m.summary();
        assert_eq!(s.generated, 10);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.forwarding_ops, 1);
        assert!((s.success_rate - 0.1).abs() < 1e-12);
    }
}
