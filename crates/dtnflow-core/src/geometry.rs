//! Minimal planar geometry used for landmark placement, subarea (Voronoi)
//! division and the geographic baselines.

/// A point in a flat 2-D coordinate system (meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Construct a point from coordinates in meters.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt when comparing).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// An axis-aligned rectangle, used as the overall network area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    /// Construct a rectangle; panics if `min` is not component-wise ≤ `max`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "rectangle min must be <= max"
        );
        Rect { min, max }
    }

    /// Rectangle `[0,w] x [0,h]`.
    pub fn from_size(w: f64, h: f64) -> Self {
        Rect::new(Point::new(0.0, 0.0), Point::new(w, h))
    }

    /// Width in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamp `p` into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Smallest rectangle containing every point; `None` when empty.
    pub fn bounding(points: &[Point]) -> Option<Rect> {
        let first = *points.first()?;
        let mut r = Rect {
            min: first,
            max: first,
        };
        for p in &points[1..] {
            r.min.x = r.min.x.min(p.x);
            r.min.y = r.min.y.min(p.y);
            r.max.x = r.max.x.max(p.x);
            r.max.y = r.max.y.max(p.y);
        }
        Some(r)
    }
}

/// Index of the point in `sites` nearest to `p` (ties broken by lowest
/// index, making Voronoi assignment deterministic). Panics on empty `sites`.
pub fn nearest_site(sites: &[Point], p: Point) -> usize {
    assert!(!sites.is_empty(), "nearest_site needs at least one site");
    let mut best = 0usize;
    let mut best_d = sites[0].distance_sq(p);
    for (i, s) in sites.iter().enumerate().skip(1) {
        let d = s.distance_sq(p);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn rect_contains_and_clamps() {
        let r = Rect::from_size(10.0, 5.0);
        assert!(r.contains(Point::new(10.0, 5.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-1.0, 99.0)), Point::new(0.0, 5.0));
        assert!((r.width() - 10.0).abs() < 1e-12);
        assert!((r.height() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 5.0),
            Point::new(0.0, -1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r.min, Point::new(-3.0, -1.0));
        assert_eq!(r.max, Point::new(1.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }

    #[test]
    fn nearest_site_breaks_ties_low_index() {
        let sites = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        // Exactly between the two sites: the lower index wins.
        assert_eq!(nearest_site(&sites, Point::new(1.0, 0.0)), 0);
        assert_eq!(nearest_site(&sites, Point::new(1.7, 0.0)), 1);
    }
}
