//! The packet record and its lifecycle.
//!
//! Packets in the paper are fixed-size (1 kB by default), carry a
//! time-to-live, and are destined to a *landmark* (§III-A.2). The optional
//! [`Packet::dst_node`] field supports the §IV-E.4 extension that routes
//! packets to mobile nodes via their frequently-visited landmarks.

use crate::ids::{LandmarkId, NodeId, PacketId};
use crate::time::{SimDuration, SimTime};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Where a packet currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketLoc {
    /// Generated in a subarea but not yet picked up by any carrier
    /// (baseline routers without landmark stations start here).
    PendingAtSource(LandmarkId),
    /// Stored in a mobile node's memory.
    OnNode(NodeId),
    /// Stored at a landmark's central station (DTN-FLOW only).
    AtStation(LandmarkId),
    /// Successfully delivered at this time.
    Delivered(SimTime),
    /// Dropped because its TTL elapsed before delivery.
    Expired,
    /// Destroyed by an injected fault: generated at a station that was
    /// down, carried by a node that failed, or dropped after exhausting
    /// its retry budget at a failed station.
    Lost,
}

impl PacketLoc {
    /// Whether the packet is still live (not delivered, expired, or lost).
    #[inline]
    pub fn is_live(self) -> bool {
        !matches!(
            self,
            PacketLoc::Delivered(_) | PacketLoc::Expired | PacketLoc::Lost
        )
    }
}

/// A single-copy data packet travelling from one subarea to another.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Dense identifier.
    pub id: PacketId,
    /// Landmark of the subarea where the packet was generated.
    pub src: LandmarkId,
    /// Destination landmark (subarea).
    pub dst: LandmarkId,
    /// Optional destination mobile node (§IV-E.4 extension). When set, the
    /// packet is delivered when this node reaches a station holding it.
    pub dst_node: Option<NodeId>,
    /// Generation instant.
    pub created: SimTime,
    /// Time-to-live from `created`.
    pub ttl: SimDuration,
    /// Current location / lifecycle state.
    pub loc: PacketLoc,
    /// Landmarks whose station has held this packet, in order. Used by the
    /// routing-loop detection extension (§IV-E.2) and for path diagnostics.
    pub visited: Vec<LandmarkId>,
    /// Number of forwarding operations this packet has undergone.
    pub hops: u32,
}

impl Packet {
    /// Create a fresh packet pending at its source subarea.
    pub fn new(
        id: PacketId,
        src: LandmarkId,
        dst: LandmarkId,
        created: SimTime,
        ttl: SimDuration,
    ) -> Self {
        Packet {
            id,
            src,
            dst,
            dst_node: None,
            created,
            ttl,
            loc: PacketLoc::PendingAtSource(src),
            visited: Vec::new(),
            hops: 0,
        }
    }

    /// The absolute instant at which this packet expires.
    #[inline]
    pub fn deadline(&self) -> SimTime {
        self.created + self.ttl
    }

    /// Whether the packet's TTL has elapsed at `now`.
    #[inline]
    pub fn is_expired_at(&self, now: SimTime) -> bool {
        now >= self.deadline()
    }

    /// Remaining lifetime at `now` (zero once expired).
    #[inline]
    pub fn remaining_ttl(&self, now: SimTime) -> SimDuration {
        self.deadline().since(now)
    }

    /// End-to-end delay, if delivered.
    #[inline]
    pub fn delay(&self) -> Option<SimDuration> {
        match self.loc {
            PacketLoc::Delivered(t) => Some(t.since(self.created)),
            _ => None,
        }
    }

    /// Record a station visit and report whether the station was already on
    /// the path — i.e. whether a routing loop has been traversed (§IV-E.2).
    pub fn record_station_visit(&mut self, lm: LandmarkId) -> bool {
        let looped = self.visited.contains(&lm);
        self.visited.push(lm);
        looped
    }

    /// The landmarks of the loop the packet just closed at `lm`: everything
    /// from the first visit of `lm` onward. Empty if no loop.
    pub fn loop_members(&self, lm: LandmarkId) -> &[LandmarkId] {
        match self.visited.iter().position(|&v| v == lm) {
            Some(first) if self.visited[first + 1..].contains(&lm) => {
                let last = self
                    .visited
                    .iter()
                    .rposition(|&v| v == lm)
                    // detlint: allow(P1, reason = "guarded by the contains() check in this match arm; a second occurrence is proven present")
                    .expect("second occurrence exists");
                &self.visited[first..=last]
            }
            _ => &[],
        }
    }

    /// Checkpoint encoding (DESIGN.md §11): every field in declaration
    /// order; byte-deterministic.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u32(self.id.0);
        w.put_u16(self.src.0);
        w.put_u16(self.dst.0);
        match self.dst_node {
            None => w.put_u8(0),
            Some(n) => {
                w.put_u8(1);
                w.put_u32(n.0);
            }
        }
        w.put_u64(self.created.secs());
        w.put_u64(self.ttl.secs());
        match self.loc {
            PacketLoc::PendingAtSource(lm) => {
                w.put_u8(0);
                w.put_u16(lm.0);
            }
            PacketLoc::OnNode(n) => {
                w.put_u8(1);
                w.put_u32(n.0);
            }
            PacketLoc::AtStation(lm) => {
                w.put_u8(2);
                w.put_u16(lm.0);
            }
            PacketLoc::Delivered(t) => {
                w.put_u8(3);
                w.put_u64(t.secs());
            }
            PacketLoc::Expired => w.put_u8(4),
            PacketLoc::Lost => w.put_u8(5),
        }
        w.put_usize(self.visited.len());
        for lm in &self.visited {
            w.put_u16(lm.0);
        }
        w.put_u32(self.hops);
    }

    /// Inverse of [`Packet::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Packet, SnapshotError> {
        const CTX: &str = "Packet";
        let id = PacketId(r.u32(CTX)?);
        let src = LandmarkId(r.u16(CTX)?);
        let dst = LandmarkId(r.u16(CTX)?);
        let dst_node = match r.u8(CTX)? {
            0 => None,
            1 => Some(NodeId(r.u32(CTX)?)),
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: "Packet.dst_node",
                    tag: t as u64,
                })
            }
        };
        let created = SimTime(r.u64(CTX)?);
        let ttl = SimDuration(r.u64(CTX)?);
        let loc = match r.u8(CTX)? {
            0 => PacketLoc::PendingAtSource(LandmarkId(r.u16(CTX)?)),
            1 => PacketLoc::OnNode(NodeId(r.u32(CTX)?)),
            2 => PacketLoc::AtStation(LandmarkId(r.u16(CTX)?)),
            3 => PacketLoc::Delivered(SimTime(r.u64(CTX)?)),
            4 => PacketLoc::Expired,
            5 => PacketLoc::Lost,
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: "PacketLoc",
                    tag: t as u64,
                })
            }
        };
        let n = r.seq_len("Packet.visited")?;
        let mut visited = Vec::with_capacity(n);
        for _ in 0..n {
            visited.push(LandmarkId(r.u16(CTX)?));
        }
        let hops = r.u32(CTX)?;
        Ok(Packet {
            id,
            src,
            dst,
            dst_node,
            created,
            ttl,
            loc,
            visited,
            hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, HOUR};

    fn pkt() -> Packet {
        Packet::new(PacketId(0), LandmarkId(1), LandmarkId(2), SimTime(100), DAY)
    }

    #[test]
    fn lifecycle_flags() {
        let mut p = pkt();
        assert!(p.loc.is_live());
        p.loc = PacketLoc::Delivered(SimTime(200));
        assert!(!p.loc.is_live());
        assert_eq!(p.delay(), Some(SimDuration(100)));
        p.loc = PacketLoc::Expired;
        assert!(!p.loc.is_live());
        assert_eq!(p.delay(), None);
    }

    #[test]
    fn ttl_accounting() {
        let p = pkt();
        assert_eq!(p.deadline(), SimTime(100 + 86_400));
        assert!(!p.is_expired_at(SimTime(100)));
        assert!(p.is_expired_at(p.deadline()));
        assert_eq!(p.remaining_ttl(SimTime(100) + HOUR), SimDuration(82_800));
        assert_eq!(p.remaining_ttl(SimTime::MAX), SimDuration::ZERO);
    }

    #[test]
    fn loop_detection_on_revisit() {
        let mut p = pkt();
        assert!(!p.record_station_visit(LandmarkId(1)));
        assert!(!p.record_station_visit(LandmarkId(3)));
        assert!(!p.record_station_visit(LandmarkId(4)));
        assert!(p.record_station_visit(LandmarkId(3)));
        assert_eq!(
            p.loop_members(LandmarkId(3)),
            &[LandmarkId(3), LandmarkId(4), LandmarkId(3)]
        );
        // A landmark never visited twice yields no loop.
        assert!(p.loop_members(LandmarkId(1)).is_empty());
        assert!(p.loop_members(LandmarkId(9)).is_empty());
    }
}
