//! Incrementally maintained carrier rank index.
//!
//! DTN-FLOW's carrier selection (§IV-D.3) hands a packet to the
//! connected node with the highest `accuracy × transit-probability`
//! toward the packet's target landmark. The straightforward
//! implementation rescans every connected node per packet; this index
//! keeps, per `(group, target)` — in the router, per (landmark,
//! destination landmark) — the candidate members already sorted by
//! descending score, so selection walks a pre-ranked list and stops at
//! the first eligible member.
//!
//! The index is maintained by its owner on membership events (a node
//! arriving at or leaving a landmark): [`RankIndex::insert`] files one
//! `(score, member)` entry per target, [`RankIndex::remove`] deletes
//! it by recomputing the identical key. Scores must therefore be
//! bit-reproducible between insert and remove — in the router they
//! are, because a node's predictor distribution and accuracy are
//! frozen while it sits at a landmark.
//!
//! Determinism: entries are ordered by `(score desc, member asc)`
//! under `f64::total_cmp`, a total order on bit patterns, so the walk
//! order is a pure function of the stored set — and ties go to the
//! lowest member id, matching the scan the index replaces.

use crate::dense::DenseMap;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};
use std::cmp::Ordering;

/// One ranked candidate: `member` scores `score` toward the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankEntry {
    /// The ranking key (higher is better).
    pub score: f64,
    /// The candidate's dense id.
    pub member: u32,
}

impl RankEntry {
    /// The sort order of the per-target lists: descending score
    /// (`total_cmp`, so reproducible on any bit pattern), ties to the
    /// lowest member id.
    #[inline]
    pub fn rank_cmp(&self, other: &RankEntry) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then(self.member.cmp(&other.member))
    }
}

/// A per-`(group, target)` rank index. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct RankIndex {
    /// One map per group, keyed by target id; each value is a
    /// non-empty list sorted by [`RankEntry::rank_cmp`].
    groups: Vec<DenseMap<u16, Vec<RankEntry>>>,
}

impl RankIndex {
    /// An index over `groups` groups (in the router: one per landmark).
    pub fn new(groups: usize) -> Self {
        let mut g = Vec::with_capacity(groups);
        g.resize_with(groups, DenseMap::new);
        RankIndex { groups: g }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of `(group, target, member)` entries.
    pub fn len(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when no entry is filed.
    pub fn is_empty(&self) -> bool {
        self.groups.iter().all(DenseMap::is_empty)
    }

    /// File `member` with `score` toward `target` in `group`.
    pub fn insert(&mut self, group: usize, target: u16, score: f64, member: u32) {
        let entry = RankEntry { score, member };
        let list = self.groups[group].get_or_insert_with(target, Vec::new);
        let pos = match list.binary_search_by(|e| e.rank_cmp(&entry)) {
            Ok(pos) | Err(pos) => pos,
        };
        list.insert(pos, entry);
    }

    /// Remove the entry previously filed with exactly this
    /// `(score, member)` key; returns whether it was present.
    pub fn remove(&mut self, group: usize, target: u16, score: f64, member: u32) -> bool {
        let entry = RankEntry { score, member };
        let Some(list) = self.groups[group].get_mut(target) else {
            return false;
        };
        let Ok(pos) = list.binary_search_by(|e| e.rank_cmp(&entry)) else {
            return false;
        };
        list.remove(pos);
        if list.is_empty() {
            // Keep absent-vs-empty unobservable (canonical codec).
            self.groups[group].remove(target);
        }
        true
    }

    /// The candidates toward `target` in `group`, best first; empty
    /// when none are filed.
    pub fn ranked(&self, group: usize, target: u16) -> &[RankEntry] {
        self.groups
            .get(group)
            .and_then(|g| g.get(target))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Checkpoint encoding (DESIGN.md §11): group count, then per
    /// group the non-empty targets ascending, each with its ranked
    /// entry list. Canonical — empty lists are never written.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.groups.len());
        for g in &self.groups {
            let present = g.values().filter(|v| !v.is_empty()).count();
            w.put_usize(present);
            for (target, list) in g.iter() {
                if list.is_empty() {
                    continue;
                }
                w.put_u16(target);
                w.put_usize(list.len());
                for e in list {
                    w.put_f64(e.score);
                    w.put_u32(e.member);
                }
            }
        }
    }

    /// Inverse of [`RankIndex::encode`]; rejects unsorted targets,
    /// unsorted entries, and empty lists so decoding then re-encoding
    /// is byte-stable.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "RankIndex";
        let groups = r.seq_len(CTX)?;
        let mut idx = RankIndex::new(groups);
        for g in 0..groups {
            let targets = r.seq_len(CTX)?;
            let mut prev_target: Option<u16> = None;
            for _ in 0..targets {
                let target = r.u16(CTX)?;
                if prev_target.is_some_and(|p| target <= p) {
                    return Err(SnapshotError::Corrupt { context: CTX });
                }
                prev_target = Some(target);
                let n = r.seq_len(CTX)?;
                if n == 0 {
                    return Err(SnapshotError::Corrupt { context: CTX });
                }
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    let score = r.f64(CTX)?;
                    let member = r.u32(CTX)?;
                    let e = RankEntry { score, member };
                    if list
                        .last()
                        .is_some_and(|p: &RankEntry| p.rank_cmp(&e) != Ordering::Less)
                    {
                        return Err(SnapshotError::Corrupt { context: CTX });
                    }
                    list.push(e);
                }
                idx.groups[g].insert(target, list);
            }
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn ranks_by_score_desc_then_member_asc() {
        let mut idx = RankIndex::new(2);
        idx.insert(0, 3, 0.5, 10);
        idx.insert(0, 3, 0.9, 20);
        idx.insert(0, 3, 0.5, 5);
        idx.insert(1, 3, 1.0, 99); // other group, invisible to group 0
        let got: Vec<(f64, u32)> = idx
            .ranked(0, 3)
            .iter()
            .map(|e| (e.score, e.member))
            .collect();
        assert_eq!(got, vec![(0.9, 20), (0.5, 5), (0.5, 10)]);
        assert!(idx.ranked(0, 4).is_empty());
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn remove_needs_the_exact_key() {
        let mut idx = RankIndex::new(1);
        idx.insert(0, 1, 0.25, 7);
        assert!(!idx.remove(0, 1, 0.26, 7));
        assert!(!idx.remove(0, 1, 0.25, 8));
        assert!(!idx.remove(0, 2, 0.25, 7));
        assert!(idx.remove(0, 1, 0.25, 7));
        assert!(!idx.remove(0, 1, 0.25, 7));
        assert!(idx.is_empty());
    }

    #[test]
    fn matches_full_rescan_under_random_churn() {
        // Mirror of the router's usage: members join a group with a
        // frozen score vector, leave by recomputing the same scores.
        let mut seed = 0xAB5E_0001u64;
        let mut idx = RankIndex::new(4);
        // member -> (group, Vec<(target, score)>)
        type Live = Vec<(u32, usize, Vec<(u16, f64)>)>;
        let mut live: Live = Vec::new();
        for step in 0..2_000u32 {
            if !lcg(&mut seed).is_multiple_of(3) || live.is_empty() {
                let member = step;
                let group = (lcg(&mut seed) % 4) as usize;
                let mut scores = Vec::new();
                for target in 0..6u16 {
                    if lcg(&mut seed).is_multiple_of(2) {
                        let score = (lcg(&mut seed) % 1_000) as f64 / 1_000.0;
                        scores.push((target, score));
                        idx.insert(group, target, score, member);
                    }
                }
                live.push((member, group, scores));
            } else {
                let pick = lcg(&mut seed) as usize % live.len();
                let (member, group, scores) = live.swap_remove(pick);
                for (target, score) in scores {
                    assert!(idx.remove(group, target, score, member));
                }
            }
            // Spot-check one (group, target) against a rescan.
            let group = (lcg(&mut seed) % 4) as usize;
            let target = (lcg(&mut seed) % 6) as u16;
            let mut expect: Vec<RankEntry> = live
                .iter()
                .filter(|(_, g, _)| *g == group)
                .flat_map(|(m, _, s)| {
                    s.iter()
                        .filter(|(t, _)| *t == target)
                        .map(|&(_, score)| RankEntry { score, member: *m })
                })
                .collect();
            expect.sort_by(RankEntry::rank_cmp);
            assert_eq!(idx.ranked(group, target), expect.as_slice());
        }
    }

    #[test]
    fn codec_roundtrips_byte_stably() {
        let mut idx = RankIndex::new(3);
        idx.insert(0, 2, 0.75, 4);
        idx.insert(0, 2, 0.75, 1);
        idx.insert(2, 0, 0.125, 9);
        idx.insert(0, 5, 1.0, 4);
        idx.insert(0, 5, 0.0, 11);
        idx.remove(0, 5, 0.0, 11);
        let mut w = Writer::new();
        idx.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = RankIndex::decode(&mut r).expect("decode");
        assert_eq!(back.groups(), 3);
        assert_eq!(back.ranked(0, 2), idx.ranked(0, 2));
        assert_eq!(back.ranked(2, 0), idx.ranked(2, 0));
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn codec_rejects_unsorted_and_empty_lists() {
        // Unsorted entries within a target list.
        let mut w = Writer::new();
        w.put_usize(1); // groups
        w.put_usize(1); // targets
        w.put_u16(0);
        w.put_usize(2);
        w.put_f64(0.1);
        w.put_u32(1);
        w.put_f64(0.9); // higher score after lower: out of order
        w.put_u32(2);
        let bytes = w.into_bytes();
        assert!(RankIndex::decode(&mut Reader::new(&bytes)).is_err());

        // An empty target list is non-canonical.
        let mut w = Writer::new();
        w.put_usize(1);
        w.put_usize(1);
        w.put_u16(0);
        w.put_usize(0);
        let bytes = w.into_bytes();
        assert!(RankIndex::decode(&mut Reader::new(&bytes)).is_err());
    }
}
