//! Hierarchical timing wheel for deadline scheduling.
//!
//! The simulator has two deadline populations: packet expiries (every
//! packet dies exactly `ttl` after creation) and router retry/dead-end
//! timers. Both were previously served by per-unit linear scans or a
//! binary heap; this wheel gives O(1) insert and amortized O(1)
//! advance while draining entries in exactly the total order the old
//! code observed: ascending `(at, seq)`.
//!
//! Layout: [`LEVELS`] levels of [`SLOTS`] slots each, one tick (one
//! simulated second) of granularity at level 0 and a ×256 coarsening
//! per level, covering 2^32 ticks (~136 years) before the overflow
//! list is touched. An entry lives at the level of the *highest byte*
//! in which its deadline differs from `base` (the next undrained
//! tick), in the slot named by that byte of the deadline; whenever
//! `base` rolls over a 256^l boundary, the slot of level `l` that has
//! just come into range is cascaded down. Entries pushed with a
//! deadline before `base` (never produced by the simulator, but
//! accepted defensively) sit in a dedicated overdue list that drains
//! first.
//!
//! Determinism: every slot drain sorts its (same-deadline) entries by
//! `seq`, so the drain order is a pure function of the inserted
//! `(at, seq)` pairs — independent of insertion order, cascade
//! history, or checkpoint/restore (the codec stores the canonical
//! sorted entry list and re-places it against the serialized `base`).

use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Number of wheel levels.
pub const LEVELS: usize = 4;
/// Slots per level (one byte of the deadline).
pub const SLOTS: usize = 256;

/// One scheduled item: fires at tick `at`, tie-broken by `seq`, and
/// carries an opaque `payload` (a packet id or timer token).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WheelEntry {
    /// Absolute deadline tick.
    pub at: u64,
    /// Total-order tie-break among equal deadlines (insertion sequence
    /// number or dense id — the caller's choice, but unique per entry).
    pub seq: u64,
    /// Opaque caller data.
    pub payload: u64,
}

impl WheelEntry {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

#[derive(Debug, Clone)]
struct Level {
    /// One bit per slot; bit set iff the slot's `Vec` is non-empty.
    occupied: [u64; SLOTS / 64],
    slots: Vec<Vec<WheelEntry>>,
}

impl Level {
    fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Vec::new);
        Level {
            occupied: [0; SLOTS / 64],
            slots,
        }
    }

    #[inline]
    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Lowest occupied slot index `>= from`, if any.
    fn first_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut mask = !0u64 << (from % 64);
        while word < SLOTS / 64 {
            let bits = self.occupied[word] & mask;
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            mask = !0;
        }
        None
    }
}

/// Where [`TimingWheel::place`] files an entry.
enum Placement {
    Overdue,
    Slot(usize, usize),
    Overflow,
}

/// A hierarchical timing wheel over `u64` ticks. See the module docs
/// for the layout and the determinism contract.
#[derive(Debug, Clone)]
pub struct TimingWheel {
    /// The next undrained tick: every drained entry had `at < base`,
    /// every stored non-overdue entry has `at >= base`.
    base: u64,
    // detlint: allow(S1, reason = "slot placement is not wire state; decode re-places every entry via push against the serialized base")
    levels: Vec<Level>,
    /// Entries pushed with `at < base` (defensive; drain first).
    // detlint: allow(S1, reason = "entries travel in the canonical sorted list; decode re-files overdue ones via push")
    overdue: Vec<WheelEntry>,
    /// Entries beyond the top level's horizon (`at` differs from
    /// `base` above byte `LEVELS - 1`).
    // detlint: allow(S1, reason = "entries travel in the canonical sorted list; decode re-files overflow ones via push")
    overflow: Vec<WheelEntry>,
    // detlint: allow(S1, reason = "derived count; every decode-side push re-increments it")
    len: usize,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// An empty wheel with `base = 0`.
    pub fn new() -> Self {
        let mut levels = Vec::with_capacity(LEVELS);
        levels.resize_with(LEVELS, Level::new);
        TimingWheel {
            base: 0,
            levels,
            overdue: Vec::new(),
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The next undrained tick.
    pub fn base(&self) -> u64 {
        self.base
    }

    #[inline]
    fn classify(&self, at: u64) -> Placement {
        if at < self.base {
            return Placement::Overdue;
        }
        let diff = at ^ self.base;
        if diff == 0 {
            return Placement::Slot(0, (at & 0xFF) as usize);
        }
        let level = (63 - diff.leading_zeros() as usize) / 8;
        if level >= LEVELS {
            return Placement::Overflow;
        }
        Placement::Slot(level, ((at >> (8 * level)) & 0xFF) as usize)
    }

    fn place(&mut self, e: WheelEntry) {
        match self.classify(e.at) {
            Placement::Overdue => self.overdue.push(e),
            Placement::Overflow => self.overflow.push(e),
            Placement::Slot(level, slot) => {
                self.levels[level].slots[slot].push(e);
                self.levels[level].set_bit(slot);
            }
        }
    }

    /// Schedule `payload` to fire at tick `at`, tie-broken by `seq`.
    /// `(at, seq)` pairs must be unique across live entries.
    pub fn push(&mut self, at: u64, seq: u64, payload: u64) {
        self.place(WheelEntry { at, seq, payload });
        self.len += 1;
    }

    /// Remove the entry `(at, seq)`, returning its payload if present.
    pub fn cancel(&mut self, at: u64, seq: u64) -> Option<u64> {
        let (vec, level_slot) = match self.classify(at) {
            Placement::Overdue => (&mut self.overdue, None),
            Placement::Overflow => (&mut self.overflow, None),
            Placement::Slot(level, slot) => {
                (&mut self.levels[level].slots[slot], Some((level, slot)))
            }
        };
        let pos = vec.iter().position(|e| e.at == at && e.seq == seq)?;
        let e = vec.remove(pos);
        if vec.is_empty() {
            if let Some((level, slot)) = level_slot {
                self.levels[level].clear_bit(slot);
            }
        }
        self.len -= 1;
        Some(e.payload)
    }

    /// Cascade freshly-in-range slots after `base` rolled over one or
    /// more 256^l boundaries (its low bytes became zero).
    fn cascade(&mut self) {
        // Highest level whose window `base` just entered: the number
        // of trailing zero bytes of `base` (capped at the top level).
        let mut maxl = 0;
        while maxl + 1 < LEVELS && self.base.is_multiple_of(1u64 << (8 * (maxl + 1))) {
            maxl += 1;
        }
        if self.base.is_multiple_of(1u64 << (8 * LEVELS)) {
            // The whole wheel horizon rolled over: overflow entries
            // may be reachable now.
            let pending = std::mem::take(&mut self.overflow);
            for e in pending {
                self.place(e);
            }
        }
        for level in (1..=maxl).rev() {
            let slot = ((self.base >> (8 * level)) & 0xFF) as usize;
            if self.levels[level].slots[slot].is_empty() {
                continue;
            }
            let pending = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].clear_bit(slot);
            for e in pending {
                self.place(e);
            }
        }
    }

    /// Advance to `now` inclusive, appending every entry with
    /// `at <= now` to `out` in ascending `(at, seq)` order. Afterwards
    /// `base = now + 1`.
    pub fn drain_up_to(&mut self, now: u64, out: &mut Vec<WheelEntry>) {
        if !self.overdue.is_empty() {
            // All overdue deadlines precede every in-wheel deadline
            // (`at < base`), so the eligible ones drain first.
            self.overdue.sort_unstable_by_key(WheelEntry::key);
            let cut = self.overdue.partition_point(|e| e.at <= now);
            self.len -= cut;
            out.extend(self.overdue.drain(..cut));
        }
        // A jump far past the level-0 horizon would otherwise hop empty
        // 256-tick windows one at a time (a final `u64::MAX` drain would
        // take ~2^56 iterations). Rebuild from the canonical sorted view
        // instead: identical output order, `O(n log n)` in the entry
        // count rather than `O(Δt / SLOTS)` in the jump width.
        const REBUILD_SPAN: u64 = (SLOTS * SLOTS) as u64;
        if now.saturating_sub(self.base) >= REBUILD_SPAN {
            let all = self.to_sorted_vec();
            let cut = all.partition_point(|e| e.at <= now);
            out.extend_from_slice(&all[..cut]);
            self.levels.clear();
            self.levels.resize_with(LEVELS, Level::new);
            self.overdue.clear();
            self.overflow.clear();
            self.base = now.saturating_add(1);
            self.len = all.len() - cut;
            for &e in &all[cut..] {
                self.place(e);
            }
            return;
        }
        while self.base <= now {
            let window = self.base & !0xFF;
            let d0 = (self.base & 0xFF) as usize;
            match self.levels[0].first_occupied(d0) {
                Some(slot) if window + slot as u64 <= now => {
                    let at = window + slot as u64;
                    let mut fired = std::mem::take(&mut self.levels[0].slots[slot]);
                    self.levels[0].clear_bit(slot);
                    fired.sort_unstable_by_key(|e| e.seq);
                    self.len -= fired.len();
                    out.append(&mut fired);
                    self.base = at.saturating_add(1);
                    if self.base == at {
                        return; // saturated at u64::MAX
                    }
                }
                _ => {
                    // Nothing fires in the rest of this 256-tick
                    // window; hop to the next window or stop at `now`.
                    let window_end = match window.checked_add(SLOTS as u64) {
                        Some(end) if end <= now.saturating_add(1) => end,
                        _ => {
                            self.base = now.saturating_add(1);
                            return;
                        }
                    };
                    self.base = window_end;
                }
            }
            if self.base.is_multiple_of(SLOTS as u64) {
                self.cascade();
            }
        }
    }

    /// The entry with the smallest `(at, seq)`, without removing it.
    pub fn peek_min(&self) -> Option<WheelEntry> {
        self.locate_min().map(|(placement, pos)| match placement {
            Placement::Overdue => self.overdue[pos],
            Placement::Overflow => self.overflow[pos],
            Placement::Slot(level, slot) => self.levels[level].slots[slot][pos],
        })
    }

    /// Remove and return the entry with the smallest `(at, seq)`.
    pub fn pop_min(&mut self) -> Option<WheelEntry> {
        let (placement, pos) = self.locate_min()?;
        let (vec, level_slot) = match placement {
            Placement::Overdue => (&mut self.overdue, None),
            Placement::Overflow => (&mut self.overflow, None),
            Placement::Slot(level, slot) => {
                (&mut self.levels[level].slots[slot], Some((level, slot)))
            }
        };
        let e = vec.remove(pos);
        if vec.is_empty() {
            if let Some((level, slot)) = level_slot {
                self.levels[level].clear_bit(slot);
            }
        }
        self.len -= 1;
        Some(e)
    }

    /// Locate the minimal entry: overdue beats everything (its
    /// deadlines all precede `base`); otherwise the first occupied
    /// slot of the lowest non-empty level covers the earliest window
    /// (higher levels only hold deadlines beyond the lower levels'
    /// horizon); otherwise overflow.
    fn locate_min(&self) -> Option<(Placement, usize)> {
        fn min_pos(v: &[WheelEntry]) -> Option<usize> {
            v.iter()
                .enumerate()
                .min_by_key(|(_, e)| e.key())
                .map(|(i, _)| i)
        }
        if let Some(pos) = min_pos(&self.overdue) {
            return Some((Placement::Overdue, pos));
        }
        for (level, lv) in self.levels.iter().enumerate() {
            let from = if level == 0 {
                (self.base & 0xFF) as usize
            } else {
                // Slot == the base digit is impossible at level > 0
                // (it would have been placed lower), so start past it.
                ((self.base >> (8 * level)) & 0xFF) as usize + 1
            };
            if from >= SLOTS {
                continue;
            }
            if let Some(slot) = lv.first_occupied(from) {
                let pos = min_pos(&lv.slots[slot])?;
                return Some((Placement::Slot(level, slot), pos));
            }
        }
        min_pos(&self.overflow).map(|pos| (Placement::Overflow, pos))
    }

    /// Every stored entry in ascending `(at, seq)` order — the
    /// canonical view the codec writes and the drain order respects.
    pub fn to_sorted_vec(&self) -> Vec<WheelEntry> {
        let mut all = Vec::with_capacity(self.len);
        all.extend_from_slice(&self.overdue);
        for lv in &self.levels {
            for slot in &lv.slots {
                all.extend_from_slice(slot);
            }
        }
        all.extend_from_slice(&self.overflow);
        all.sort_unstable_by_key(WheelEntry::key);
        all
    }

    /// Checkpoint encoding (DESIGN.md §11): `base`, then the entries
    /// in canonical ascending `(at, seq)` order. Slot placement is not
    /// observable and is not preserved.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.base);
        let all = self.to_sorted_vec();
        w.put_usize(all.len());
        for e in &all {
            w.put_u64(e.at);
            w.put_u64(e.seq);
            w.put_u64(e.payload);
        }
    }

    /// Inverse of [`TimingWheel::encode`]; rejects out-of-order
    /// entries so decoding then re-encoding is byte-stable.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "TimingWheel";
        let base = r.u64(CTX)?;
        let n = r.seq_len(CTX)?;
        let mut wheel = TimingWheel::new();
        wheel.base = base;
        let mut prev: Option<(u64, u64)> = None;
        for _ in 0..n {
            let at = r.u64(CTX)?;
            let seq = r.u64(CTX)?;
            let payload = r.u64(CTX)?;
            if prev.is_some_and(|p| (at, seq) <= p) {
                return Err(SnapshotError::Corrupt { context: CTX });
            }
            prev = Some((at, seq));
            wheel.push(at, seq, payload);
        }
        Ok(wheel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The structure the wheel replaces: a flat list drained by scan.
    #[derive(Default)]
    struct Naive {
        entries: Vec<WheelEntry>,
    }

    impl Naive {
        fn push(&mut self, at: u64, seq: u64, payload: u64) {
            self.entries.push(WheelEntry { at, seq, payload });
        }

        fn drain_up_to(&mut self, now: u64, out: &mut Vec<WheelEntry>) {
            let mut fired: Vec<WheelEntry> = self
                .entries
                .iter()
                .copied()
                .filter(|e| e.at <= now)
                .collect();
            fired.sort_unstable_by_key(WheelEntry::key);
            self.entries.retain(|e| e.at > now);
            out.append(&mut fired);
        }
    }

    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn drains_in_deadline_then_seq_order() {
        let mut w = TimingWheel::new();
        w.push(50, 3, 103);
        w.push(10, 1, 101);
        w.push(50, 2, 102);
        w.push(700, 4, 104); // level 1
        let mut out = Vec::new();
        w.drain_up_to(60, &mut out);
        let got: Vec<(u64, u64)> = out.iter().map(|e| (e.at, e.seq)).collect();
        assert_eq!(got, vec![(10, 1), (50, 2), (50, 3)]);
        assert_eq!(w.len(), 1);
        out.clear();
        w.drain_up_to(1_000, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload, 104);
        assert!(w.is_empty());
    }

    #[test]
    fn cascades_across_every_level() {
        let mut w = TimingWheel::new();
        // One entry per level plus overflow.
        let ats = [
            5u64,
            300,
            70_000,
            17_000_000,
            (1u64 << 32) + 9, // beyond the 4-level horizon from base 0
        ];
        for (i, &at) in ats.iter().enumerate() {
            w.push(at, i as u64, at);
        }
        let mut out = Vec::new();
        w.drain_up_to((1 << 32) + 100, &mut out);
        let got: Vec<u64> = out.iter().map(|e| e.at).collect();
        assert_eq!(got, ats.to_vec());
        assert!(w.is_empty());
        assert_eq!(w.base(), (1 << 32) + 101);
    }

    #[test]
    fn equivalent_to_naive_scan_under_random_workload() {
        let mut seed = 0x5EED_0001u64;
        for round in 0..20 {
            let mut w = TimingWheel::new();
            let mut n = Naive::default();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..400 {
                match lcg(&mut seed) % 4 {
                    0 | 1 => {
                        // Mostly future deadlines; occasionally far.
                        let span = if lcg(&mut seed).is_multiple_of(10) {
                            200_000
                        } else {
                            2_000
                        };
                        let at = now + lcg(&mut seed) % span;
                        w.push(at, seq, seq);
                        n.push(at, seq, seq);
                        seq += 1;
                    }
                    2 => {
                        now += lcg(&mut seed) % 3_000;
                        let (mut a, mut b) = (Vec::new(), Vec::new());
                        w.drain_up_to(now, &mut a);
                        n.drain_up_to(now, &mut b);
                        assert_eq!(a, b, "round {round} diverged at now={now}");
                    }
                    _ => {
                        // Cancel a random live entry (if any).
                        if let Some(&e) = n
                            .entries
                            .get(lcg(&mut seed) as usize % n.entries.len().max(1))
                        {
                            assert_eq!(w.cancel(e.at, e.seq), Some(e.payload));
                            n.entries.retain(|x| x.seq != e.seq);
                        }
                    }
                }
                assert_eq!(w.len(), n.entries.len());
            }
            let (mut a, mut b) = (Vec::new(), Vec::new());
            w.drain_up_to(u64::MAX, &mut a);
            n.drain_up_to(u64::MAX, &mut b);
            assert_eq!(a, b, "final drain diverged in round {round}");
        }
    }

    #[test]
    fn peek_and_pop_follow_the_total_order() {
        let mut w = TimingWheel::new();
        w.push(500, 7, 1);
        w.push(500, 2, 2);
        w.push(40, 9, 3);
        w.push(90_000, 1, 4);
        let mut popped = Vec::new();
        while let Some(min) = w.peek_min() {
            assert_eq!(w.pop_min(), Some(min));
            popped.push(min.key());
        }
        assert_eq!(popped, vec![(40, 9), (500, 2), (500, 7), (90_000, 1)]);
        assert!(w.is_empty());
        assert_eq!(w.pop_min(), None);
    }

    #[test]
    fn pop_then_push_earlier_entry_is_still_found() {
        let mut w = TimingWheel::new();
        w.push(1_000, 1, 1);
        assert_eq!(w.pop_min().map(|e| e.at), Some(1_000));
        // `pop_min` must not advance `base`, so an earlier deadline
        // pushed afterwards still drains first.
        w.push(10, 2, 2);
        w.push(1_000, 3, 3);
        assert_eq!(w.peek_min().map(|e| e.at), Some(10));
        let mut out = Vec::new();
        w.drain_up_to(2_000, &mut out);
        let got: Vec<u64> = out.iter().map(|e| e.at).collect();
        assert_eq!(got, vec![10, 1_000]);
    }

    #[test]
    fn overdue_pushes_drain_first_in_order() {
        let mut w = TimingWheel::new();
        let mut out = Vec::new();
        w.drain_up_to(100, &mut out); // base = 101
        assert!(out.is_empty());
        w.push(50, 1, 1); // overdue
        w.push(20, 2, 2); // overdue
        w.push(150, 3, 3);
        assert_eq!(w.peek_min().map(|e| e.at), Some(20));
        w.drain_up_to(200, &mut out);
        let got: Vec<u64> = out.iter().map(|e| e.at).collect();
        assert_eq!(got, vec![20, 50, 150]);
    }

    #[test]
    fn codec_roundtrips_and_preserves_drain_order() {
        let mut w = TimingWheel::new();
        let mut out = Vec::new();
        w.drain_up_to(999, &mut out); // non-zero base
        for (i, at) in [1_500u64, 1_200, 400_000, 1_200].iter().enumerate() {
            w.push(*at, i as u64, 100 + i as u64);
        }
        let mut buf = Writer::new();
        w.encode(&mut buf);
        let bytes = buf.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut back = TimingWheel::decode(&mut r).expect("decode");
        assert_eq!(back.base(), w.base());
        assert_eq!(back.len(), w.len());
        // Re-encode is byte-stable.
        let mut buf2 = Writer::new();
        back.encode(&mut buf2);
        assert_eq!(buf2.into_bytes(), bytes);
        // And the restored wheel drains identically.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        w.drain_up_to(u64::MAX, &mut a);
        back.drain_up_to(u64::MAX, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn codec_rejects_unsorted_entries() {
        let mut buf = Writer::new();
        buf.put_u64(0); // base
        buf.put_usize(2);
        for (at, seq) in [(500u64, 1u64), (400, 0)] {
            buf.put_u64(at);
            buf.put_u64(seq);
            buf.put_u64(0);
        }
        let bytes = buf.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(TimingWheel::decode(&mut r).is_err());
    }
}
