//! Property tests for the core vocabulary types.

use dtnflow_core::geometry::{nearest_site, Point, Rect};
use dtnflow_core::metrics::{quantile_sorted, FiveNum, RunMetrics};
use dtnflow_core::packet::{Packet, PacketLoc};
use dtnflow_core::rngutil::{log_normal, rng_for, weighted_choice, zipf_weights};
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_core::{LandmarkId, PacketId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn simtime_arithmetic_never_panics(a in any::<u64>(), d in any::<u64>()) {
        let t = SimTime(a) + SimDuration(d);
        prop_assert!(t >= SimTime(a) || t == SimTime::MAX);
        let back = t.since(SimTime(a));
        prop_assert!(back.secs() <= d || t == SimTime::MAX);
        // since() is monotone and never negative.
        prop_assert_eq!(SimTime(a).since(t), SimDuration::ZERO);
    }

    #[test]
    fn unit_index_is_monotone(a in 0u64..1u64<<40, b in 0u64..1u64<<40, unit in 1u64..1u64<<20) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let u = SimDuration(unit);
        prop_assert!(SimTime(lo).unit_index(u) <= SimTime(hi).unit_index(u));
        // An instant lies inside its unit.
        let idx = SimTime(lo).unit_index(u);
        prop_assert!(idx * unit <= lo && lo < (idx + 1) * unit);
    }

    #[test]
    fn five_num_bounds_every_sample(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
        let f = FiveNum::of(&xs).unwrap();
        prop_assert!(f.min <= f.q1 && f.q1 <= f.q3 && f.q3 <= f.max);
        prop_assert!(f.mean >= f.min - 1e-9 && f.mean <= f.max + 1e-9);
        for &x in &xs {
            prop_assert!(x >= f.min && x <= f.max);
        }
    }

    #[test]
    fn quantiles_are_monotone(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile_sorted(&xs, lo) <= quantile_sorted(&xs, hi) + 1e-9);
    }

    #[test]
    fn metrics_success_rate_is_a_probability(
        delivered in 0u64..500,
        extra in 0u64..500,
        delays in proptest::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let mut m = RunMetrics {
            generated: delivered + extra,
            ..RunMetrics::default()
        };
        for _ in 0..delivered {
            m.record_delivery(SimDuration(7));
        }
        for &d in &delays {
            let _ = d;
        }
        if m.generated > 0 {
            prop_assert!((0.0..=1.0).contains(&m.success_rate()));
        }
        prop_assert!(m.total_cost() >= m.forwarding_ops as f64);
    }

    #[test]
    fn nearest_site_is_really_nearest(
        sites in proptest::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 1..40),
        px in -1e4f64..1e4,
        py in -1e4f64..1e4,
    ) {
        let pts: Vec<Point> = sites.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let p = Point::new(px, py);
        let best = nearest_site(&pts, p);
        for s in &pts {
            prop_assert!(pts[best].distance_sq(p) <= s.distance_sq(p) + 1e-9);
        }
    }

    #[test]
    fn rect_clamp_is_idempotent_and_contained(
        w in 0.1f64..1e4, h in 0.1f64..1e4,
        px in -1e5f64..1e5, py in -1e5f64..1e5,
    ) {
        let r = Rect::from_size(w, h);
        let c = r.clamp(Point::new(px, py));
        prop_assert!(r.contains(c));
        let c2 = r.clamp(c);
        prop_assert!((c.x - c2.x).abs() < 1e-12 && (c.y - c2.y).abs() < 1e-12);
    }

    #[test]
    fn weighted_choice_picks_positive_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = rng_for(seed, "prop-wchoice");
        for _ in 0..8 {
            let i = weighted_choice(&mut rng, &weights);
            prop_assert!(weights[i] > 0.0);
        }
    }

    #[test]
    fn zipf_weights_are_positive_and_decreasing(n in 1usize..200, s in 0.0f64..3.0) {
        let w = zipf_weights(n, s);
        prop_assert_eq!(w.len(), n);
        prop_assert!(w.iter().all(|&x| x > 0.0));
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-12));
    }

    #[test]
    fn log_normal_is_positive(seed in any::<u64>(), median in 0.1f64..1e4, sigma in 0.0f64..2.0) {
        let mut rng = rng_for(seed, "prop-lognormal");
        for _ in 0..8 {
            prop_assert!(log_normal(&mut rng, median, sigma) > 0.0);
        }
    }

    #[test]
    fn packet_ttl_accounting_consistent(created in 0u64..1u64<<40, ttl in 1u64..1u64<<30, probe in 0u64..1u64<<41) {
        let p = Packet::new(
            PacketId(0),
            LandmarkId(0),
            LandmarkId(1),
            SimTime(created),
            SimDuration(ttl),
        );
        let t = SimTime(probe);
        if p.is_expired_at(t) {
            prop_assert_eq!(p.remaining_ttl(t), SimDuration::ZERO);
        } else {
            prop_assert!(p.remaining_ttl(t).secs() > 0);
            prop_assert!(t < p.deadline());
        }
        prop_assert!(p.loc.is_live());
        prop_assert!(!PacketLoc::Expired.is_live());
    }

    #[test]
    fn loop_members_detects_exactly_revisits(visits in proptest::collection::vec(0u16..6, 0..24)) {
        let mut p = Packet::new(
            PacketId(0),
            LandmarkId(100),
            LandmarkId(101),
            SimTime(0),
            SimDuration(1_000),
        );
        // detlint: allow(D1, reason = "model-only membership set in a proptest; only contains() is queried, iteration order never escapes")
        let mut seen = std::collections::HashSet::new();
        for &v in &visits {
            let looped = p.record_station_visit(LandmarkId(v));
            prop_assert_eq!(looped, seen.contains(&v));
            seen.insert(v);
        }
        for v in 0u16..6 {
            let members = p.loop_members(LandmarkId(v));
            let count = visits.iter().filter(|&&x| x == v).count();
            prop_assert_eq!(!members.is_empty(), count >= 2);
            if count >= 2 {
                prop_assert_eq!(members.first(), Some(&LandmarkId(v)));
                prop_assert_eq!(members.last(), Some(&LandmarkId(v)));
            }
        }
    }
}
