//! Property equivalence: [`RankIndex`] vs the full rescan it replaced,
//! under arbitrary connect/disconnect/fold interleavings (DESIGN.md
//! §14). Mirrors the router's contract: a member joins a group filing
//! one frozen `(score, member)` key per target, leaves by recomputing
//! the same keys (scores are frozen during a stay), and a "fold"
//! re-files the member with fresh scores (remove-then-reinsert, the
//! arrive-side maintenance). After every step each ranked list must be
//! exactly the scan result: score descending, member ascending.

use dtnflow_core::{RankEntry, RankIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;

const GROUPS: usize = 3;
const TARGETS: u16 = 5;

#[derive(Debug, Clone)]
enum Op {
    /// A member connects at `group` with a score vector drawn from
    /// `seed` (one entry per target with a nonzero draw).
    Connect { group: usize, seed: u64 },
    /// A live member disconnects (picked by index modulo live count).
    Disconnect { pick: usize },
    /// A live member's prediction folds: remove + reinsert under a new
    /// score vector, as `rank_update(remove)`/`rank_update(insert)`
    /// around a predictor observation would.
    Fold { pick: usize, seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..GROUPS, any::<u64>()).prop_map(|(group, seed)| Op::Connect { group, seed }),
        1 => any::<usize>().prop_map(|pick| Op::Disconnect { pick }),
        1 => (any::<usize>(), any::<u64>()).prop_map(|(pick, seed)| Op::Fold { pick, seed }),
    ]
}

/// Deterministic score vector from a seed: scores on a 1/64 grid so
/// ties between members actually happen and exercise the member-asc
/// tie-break.
fn scores_from(seed: u64) -> Vec<(u16, f64)> {
    let mut s = seed | 1;
    let mut out = Vec::new();
    for target in 0..TARGETS {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let q = (s >> 33) % 64;
        if q != 0 {
            out.push((target, q as f64 / 64.0));
        }
    }
    out
}

/// Model state: member id -> (group, per-target scores).
type LiveMap = BTreeMap<u32, (usize, Vec<(u16, f64)>)>;

/// The scan the index replaced: collect every live member's score for
/// `(group, target)` and sort (score desc, member asc).
fn rescan(live: &LiveMap, group: usize, target: u16) -> Vec<RankEntry> {
    let mut out: Vec<RankEntry> = live
        .iter()
        .filter(|(_, (g, _))| *g == group)
        .flat_map(|(&member, (_, scores))| {
            scores
                .iter()
                .filter(|(t, _)| *t == target)
                .map(move |&(_, score)| RankEntry { score, member })
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.member.cmp(&b.member))
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn rank_index_matches_full_rescan(ops in proptest::collection::vec(op_strategy(), 0..80)) {
        let mut idx = RankIndex::new(GROUPS);
        let mut live: LiveMap = BTreeMap::new();
        let mut next_member = 0u32;
        for op in ops {
            match op {
                Op::Connect { group, seed } => {
                    let member = next_member;
                    next_member += 1;
                    let scores = scores_from(seed);
                    for &(target, score) in &scores {
                        idx.insert(group, target, score, member);
                    }
                    live.insert(member, (group, scores));
                }
                Op::Disconnect { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &member = live.keys().nth(pick % live.len()).unwrap();
                    let (group, scores) = live.remove(&member).unwrap();
                    for (target, score) in scores {
                        prop_assert!(idx.remove(group, target, score, member));
                    }
                }
                Op::Fold { pick, seed } => {
                    if live.is_empty() {
                        continue;
                    }
                    let &member = live.keys().nth(pick % live.len()).unwrap();
                    let (group, old) = live.get(&member).cloned().unwrap();
                    for (target, score) in old {
                        prop_assert!(idx.remove(group, target, score, member));
                    }
                    let fresh = scores_from(seed);
                    for &(target, score) in &fresh {
                        idx.insert(group, target, score, member);
                    }
                    live.insert(member, (group, fresh));
                }
            }
            for group in 0..GROUPS {
                for target in 0..TARGETS {
                    prop_assert_eq!(
                        idx.ranked(group, target),
                        &rescan(&live, group, target)[..],
                        "group {} target {}", group, target
                    );
                }
            }
        }
        let total: usize = live.values().map(|(_, s)| s.len()).sum();
        prop_assert_eq!(idx.len(), total);
    }
}
