//! Equivalence properties: the dense hot-path containers must be
//! observationally identical to the ordered-tree containers they
//! replaced. For any sequence of operations, `DenseMap` behaves like
//! `BTreeMap`, `DenseSet` like `BTreeSet`, and `LinkMatrix` like a
//! `BTreeMap<(u16, u16), f64>` — same lookups, same lengths, and the
//! same ascending iteration order (which is what keeps float
//! accumulations and CSV goldens byte-stable across the swap).

use dtnflow_core::dense::{DenseMap, DenseSet, LinkMatrix};
use proptest::prelude::*;

/// One step of a map workload, generated over a small key space so that
/// inserts, overwrites, removes, and misses all occur frequently.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u64),
    Remove(u16),
    Get(u16),
    Clear,
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    proptest::collection::vec(
        prop_oneof![
            6 => (0u16..64, any::<u64>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
            3 => (0u16..64).prop_map(MapOp::Remove),
            3 => (0u16..64).prop_map(MapOp::Get),
            1 => Just(MapOp::Clear),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn dense_map_equals_btree_map(ops in map_ops()) {
        let mut dense: DenseMap<u16, u64> = DenseMap::new();
        let mut tree: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    prop_assert_eq!(dense.insert(k, v), tree.insert(k, v));
                }
                MapOp::Remove(k) => {
                    prop_assert_eq!(dense.remove(k), tree.remove(&k));
                }
                MapOp::Get(k) => {
                    prop_assert_eq!(dense.get(k), tree.get(&k));
                    prop_assert_eq!(dense.contains_key(k), tree.contains_key(&k));
                }
                MapOp::Clear => {
                    dense.clear();
                    tree.clear();
                }
            }
            prop_assert_eq!(dense.len(), tree.len());
            prop_assert_eq!(dense.is_empty(), tree.is_empty());
        }
        // Iteration order and contents match exactly (ascending keys).
        let dense_items: Vec<(u16, u64)> = dense.iter().map(|(k, &v)| (k, v)).collect();
        let tree_items: Vec<(u16, u64)> = tree.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(dense_items, tree_items);
        let dense_keys: Vec<u16> = dense.keys().collect();
        let tree_keys: Vec<u16> = tree.keys().copied().collect();
        prop_assert_eq!(dense_keys, tree_keys);
        let dense_vals: Vec<u64> = dense.values().copied().collect();
        let tree_vals: Vec<u64> = tree.values().copied().collect();
        prop_assert_eq!(dense_vals, tree_vals);
    }

    #[test]
    fn dense_set_equals_btree_set(ops in proptest::collection::vec(
        prop_oneof![
            5 => (0u16..64).prop_map(|k| (0u8, k)),   // insert
            3 => (0u16..64).prop_map(|k| (1u8, k)),   // remove
            3 => (0u16..64).prop_map(|k| (2u8, k)),   // contains
            1 => (0u16..64).prop_map(|k| (3u8, k)),   // retain != k
        ],
        0..120,
    )) {
        let mut dense: DenseSet<u16> = DenseSet::new();
        let mut tree: std::collections::BTreeSet<u16> = std::collections::BTreeSet::new();
        for (kind, k) in ops {
            match kind {
                0 => {
                    prop_assert_eq!(dense.insert(k), tree.insert(k));
                }
                1 => {
                    prop_assert_eq!(dense.remove(k), tree.remove(&k));
                }
                2 => {
                    prop_assert_eq!(dense.contains(k), tree.contains(&k));
                }
                _ => {
                    dense.retain(|x| x != k);
                    tree.retain(|&x| x != k);
                }
            }
            prop_assert_eq!(dense.len(), tree.len());
        }
        let dense_items: Vec<u16> = dense.iter().collect();
        let tree_items: Vec<u16> = tree.iter().copied().collect();
        prop_assert_eq!(dense_items, tree_items);
    }

    #[test]
    fn link_matrix_equals_btree_pair_map(ops in proptest::collection::vec(
        (0u16..24, 0u16..24, -1e6f64..1e6), 0..120,
    )) {
        let mut dense = LinkMatrix::new();
        let mut tree: std::collections::BTreeMap<(u16, u16), f64> =
            std::collections::BTreeMap::new();
        for (from, to, value) in ops {
            dense.set(from, to, value);
            tree.insert((from, to), value);
            prop_assert_eq!(dense.get(from, to), Some(value));
        }
        // Every set cell reads back; every unset cell reads absent.
        for from in 0..24u16 {
            for to in 0..24u16 {
                prop_assert_eq!(dense.get(from, to), tree.get(&(from, to)).copied());
            }
        }
        // Ascending (from, to) iteration, skipping absent cells, matches
        // the ordered pair-map exactly.
        let dense_items: Vec<(u16, u16, f64)> = dense.iter().collect();
        let tree_items: Vec<(u16, u16, f64)> =
            tree.iter().map(|(&(f, t), &v)| (f, t, v)).collect();
        prop_assert_eq!(dense_items, tree_items);
    }
}
