//! Property equivalence: [`TimingWheel`] vs the naive sorted scan it
//! replaced, under arbitrary insert/cancel/advance interleavings
//! (DESIGN.md §14). The wheel is only a legal swap because its drain
//! order is bit-for-bit the old scan order — ascending `(at, seq)` —
//! for every schedule, including overdue pushes (deadline before the
//! already-drained frontier) and cancellations.

use dtnflow_core::{TimingWheel, WheelEntry};
use dtnflow_snapshot::{Reader, Writer};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule a new entry `delta` ticks past the last drain frontier.
    Insert { delta: u64 },
    /// Cancel a live entry (picked by index modulo the live count).
    Cancel { pick: usize },
    /// Drain everything due up to `delta` ticks past the frontier.
    Advance { delta: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Deadlines spread across several wheel levels (0..=70_000
        // covers levels 0-2) plus the occasional overflow-scale jump.
        4 => (0u64..70_000).prop_map(|delta| Op::Insert { delta }),
        1 => ((1u64 << 32)..(1u64 << 33)).prop_map(|delta| Op::Insert { delta }),
        2 => any::<usize>().prop_map(|pick| Op::Cancel { pick }),
        3 => (0u64..70_000).prop_map(|delta| Op::Advance { delta }),
    ]
}

/// The structure the wheel replaced: a flat list drained by scan.
fn naive_drain(model: &mut Vec<WheelEntry>, now: u64) -> Vec<WheelEntry> {
    let mut due: Vec<WheelEntry> = model.iter().copied().filter(|e| e.at <= now).collect();
    due.sort_unstable_by_key(|e| (e.at, e.seq));
    model.retain(|e| e.at > now);
    due
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn wheel_matches_naive_scan(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let mut wheel = TimingWheel::new();
        let mut model: Vec<WheelEntry> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        let mut fired = Vec::new();
        for op in ops {
            match op {
                Op::Insert { delta } => {
                    // `delta` saturating below the frontier sometimes:
                    // alternate entries land overdue on purpose.
                    let at = if seq.is_multiple_of(5) { now.saturating_sub(delta) } else { now + delta };
                    let payload = seq ^ 0xA5A5;
                    wheel.push(at, seq, payload);
                    model.push(WheelEntry { at, seq, payload });
                    seq += 1;
                }
                Op::Cancel { pick } => {
                    if model.is_empty() {
                        continue;
                    }
                    let e = model.remove(pick % model.len());
                    prop_assert_eq!(wheel.cancel(e.at, e.seq), Some(e.payload));
                }
                Op::Advance { delta } => {
                    now += delta;
                    fired.clear();
                    wheel.drain_up_to(now, &mut fired);
                    let due = naive_drain(&mut model, now);
                    prop_assert_eq!(&fired[..], &due[..]);
                }
            }
            prop_assert_eq!(wheel.len(), model.len());
            // `peek_min` always agrees with the scan's minimum.
            let mut min = model.clone();
            min.sort_unstable_by_key(|e| (e.at, e.seq));
            prop_assert_eq!(wheel.peek_min(), min.first().copied());
        }

        // Canonical snapshot and codec agree with the surviving model.
        let mut want = model.clone();
        want.sort_unstable_by_key(|e| (e.at, e.seq));
        prop_assert_eq!(wheel.to_sorted_vec(), want.clone());
        let mut w = Writer::new();
        wheel.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = TimingWheel::decode(&mut r).expect("decode");
        prop_assert_eq!(back.base(), wheel.base());
        prop_assert_eq!(back.to_sorted_vec(), want);
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes);
    }
}
