//! Counter/gauge registries and fixed-bucket histograms.
//!
//! `ObsMetrics` is a pure fold over the event stream: feeding the same
//! events in the same order always produces the same state. All keyed
//! state lives in dense-index structures (`DenseMap`, `LinkMatrix`, a
//! flat per-kind counter array) whose iteration order is ascending-id by
//! construction, so every exported snapshot is deterministic without any
//! tree bookkeeping on the per-event fold.

use dtnflow_core::dense::{DenseMap, LinkMatrix};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

use crate::event::{LossKind, Place, SimEvent, KIND_COUNT, KIND_TAGS};

/// Fixed delay-histogram bucket edges, in seconds (upper-inclusive).
///
/// 1 h, 2 h, 4 h, 8 h, 1 d, 2 d, 4 d, 8 d, 16 d — chosen to resolve the
/// paper's multi-day landmark-to-landmark delays; a final implicit
/// overflow bucket catches anything slower.
pub const DELAY_BUCKET_EDGES_SECS: [u64; 9] = [
    3_600, 7_200, 14_400, 28_800, 86_400, 172_800, 345_600, 691_200, 1_382_400,
];

/// Number of delay-histogram buckets (edges plus one overflow bucket).
pub const DELAY_BUCKETS: usize = DELAY_BUCKET_EDGES_SECS.len() + 1;

/// Hop counts 0..=15 get their own bucket; 16+ share the overflow bucket.
pub const HOP_BUCKETS: usize = 17;

/// Per-landmark counters and queue-depth gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LandmarkCounters {
    /// Packets generated with this landmark as source.
    pub generated: u64,
    /// Packets that entered this landmark's station queue (node → station).
    pub uplinks: u64,
    /// Packets that left this landmark's station queue (station → node).
    pub downlinks: u64,
    /// Packets delivered at this landmark (their destination).
    pub delivered: u64,
    /// Packets that expired while queued at this landmark.
    pub expired: u64,
    /// Packets lost while queued at this landmark.
    pub lost: u64,
    /// Mis-transit decisions observed at this landmark (§IV-D).
    pub mis_transits: u64,
    /// Of those mis-transits, how many resulted in an upload.
    pub mis_transit_uploads: u64,
    /// Stranded packets re-queued here after station recovery.
    pub retries: u64,
    /// Carried routing tables offered to this landmark.
    pub table_exchanges: u64,
    /// Current number of packets queued (pending + station buffer).
    pub queue_depth: u64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: u64,
}

/// Run-wide packet totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    pub generated: u64,
    pub delivered: u64,
    pub expired: u64,
    pub lost_outage: u64,
    pub lost_churn: u64,
    pub forwards: u64,
    pub contacts_opened: u64,
    pub contacts_closed: u64,
    /// Expiries that happened on a carrier node (not in any landmark queue).
    pub expired_on_node: u64,
}

/// Per-kind event counters as a flat array indexed by
/// [`SimEvent::kind_index`]. Reads mirror the `BTreeMap<&str, u64>` this
/// replaces: iteration yields only kinds seen at least once, in tag
/// order (kind indexes are assigned alphabetically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventCounts {
    counts: [u64; KIND_COUNT],
}

impl Default for EventCounts {
    fn default() -> Self {
        EventCounts {
            counts: [0; KIND_COUNT],
        }
    }
}

impl EventCounts {
    /// Count one occurrence of the kind at `kind_index`.
    #[inline]
    pub fn bump(&mut self, kind_index: usize) {
        self.counts[kind_index] += 1;
    }

    /// `(tag, count)` for every kind seen at least once, in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (KIND_TAGS[i], c))
    }

    /// Counts for every kind seen at least once, in tag order.
    pub fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(_, c)| c)
    }

    /// Checkpoint encoding: the full flat counter array (zeroes included),
    /// length-prefixed so a build with more kinds rejects older payloads.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(KIND_COUNT);
        for &c in &self.counts {
            w.put_u64(c);
        }
    }

    /// Inverse of [`EventCounts::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "EventCounts";
        let n = r.usize(CTX)?;
        if n != KIND_COUNT {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut counts = [0u64; KIND_COUNT];
        for c in &mut counts {
            *c = r.u64(CTX)?;
        }
        Ok(EventCounts { counts })
    }
}

impl std::ops::Index<&str> for EventCounts {
    type Output = u64;

    /// Panics on an unknown tag, like the map it replaces did on an
    /// absent key. A known tag never observed reads as 0.
    fn index(&self, tag: &str) -> &u64 {
        match KIND_TAGS.iter().position(|&t| t == tag) {
            Some(i) => &self.counts[i],
            // detlint: allow(P1, reason = "Index contract: bad key panics, like the BTreeMap this replaces")
            None => panic!("unknown event kind tag {tag:?}"),
        }
    }
}

/// Deterministic fold of the event stream into registries and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsMetrics {
    /// Per-landmark counter rows, keyed by raw landmark id.
    pub landmarks: DenseMap<u16, LandmarkCounters>,
    /// Latest smoothed EWMA bandwidth per directed link `(from, to)` (Eq. 4).
    pub bandwidth: LinkMatrix,
    /// Latest `(coverage, table revision)` sample per landmark.
    pub coverage: DenseMap<u16, (f64, u64)>,
    /// Latest cumulative route-cache `(hits, misses)` sample per
    /// landmark (DESIGN.md §14).
    pub route_cache: DenseMap<u16, (u64, u64)>,
    /// Event counts per kind tag.
    pub event_counts: EventCounts,
    /// End-to-end delivery delay histogram (see `DELAY_BUCKET_EDGES_SECS`).
    pub delay_hist: [u64; DELAY_BUCKETS],
    /// Delivery hop-count histogram (0..=15, then 16+).
    pub hop_hist: [u64; HOP_BUCKETS],
    /// Run-wide totals.
    pub totals: Totals,
}

impl ObsMetrics {
    /// Fresh, empty registries.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoint encoding (DESIGN.md §11): every registry in field
    /// order. Floats travel as raw bits, so a restored fold continues
    /// bit-exactly where the checkpointed one stopped.
    pub fn encode(&self, w: &mut Writer) {
        self.landmarks.encode_with(w, |w, c| {
            w.put_u64(c.generated);
            w.put_u64(c.uplinks);
            w.put_u64(c.downlinks);
            w.put_u64(c.delivered);
            w.put_u64(c.expired);
            w.put_u64(c.lost);
            w.put_u64(c.mis_transits);
            w.put_u64(c.mis_transit_uploads);
            w.put_u64(c.retries);
            w.put_u64(c.table_exchanges);
            w.put_u64(c.queue_depth);
            w.put_u64(c.queue_peak);
        });
        self.bandwidth.encode(w);
        self.coverage.encode_with(w, |w, &(cov, rev)| {
            w.put_f64(cov);
            w.put_u64(rev);
        });
        self.route_cache.encode_with(w, |w, &(hits, misses)| {
            w.put_u64(hits);
            w.put_u64(misses);
        });
        self.event_counts.encode(w);
        for &b in &self.delay_hist {
            w.put_u64(b);
        }
        for &b in &self.hop_hist {
            w.put_u64(b);
        }
        w.put_u64(self.totals.generated);
        w.put_u64(self.totals.delivered);
        w.put_u64(self.totals.expired);
        w.put_u64(self.totals.lost_outage);
        w.put_u64(self.totals.lost_churn);
        w.put_u64(self.totals.forwards);
        w.put_u64(self.totals.contacts_opened);
        w.put_u64(self.totals.contacts_closed);
        w.put_u64(self.totals.expired_on_node);
    }

    /// Inverse of [`ObsMetrics::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        const CTX: &str = "ObsMetrics";
        let landmarks = DenseMap::decode_with(r, |r| {
            Ok::<_, SnapshotError>(LandmarkCounters {
                generated: r.u64(CTX)?,
                uplinks: r.u64(CTX)?,
                downlinks: r.u64(CTX)?,
                delivered: r.u64(CTX)?,
                expired: r.u64(CTX)?,
                lost: r.u64(CTX)?,
                mis_transits: r.u64(CTX)?,
                mis_transit_uploads: r.u64(CTX)?,
                retries: r.u64(CTX)?,
                table_exchanges: r.u64(CTX)?,
                queue_depth: r.u64(CTX)?,
                queue_peak: r.u64(CTX)?,
            })
        })?;
        let bandwidth = LinkMatrix::decode(r)?;
        let coverage =
            DenseMap::decode_with(r, |r| Ok::<_, SnapshotError>((r.f64(CTX)?, r.u64(CTX)?)))?;
        let route_cache =
            DenseMap::decode_with(r, |r| Ok::<_, SnapshotError>((r.u64(CTX)?, r.u64(CTX)?)))?;
        let event_counts = EventCounts::decode(r)?;
        let mut delay_hist = [0u64; DELAY_BUCKETS];
        for b in &mut delay_hist {
            *b = r.u64(CTX)?;
        }
        let mut hop_hist = [0u64; HOP_BUCKETS];
        for b in &mut hop_hist {
            *b = r.u64(CTX)?;
        }
        let totals = Totals {
            generated: r.u64(CTX)?,
            delivered: r.u64(CTX)?,
            expired: r.u64(CTX)?,
            lost_outage: r.u64(CTX)?,
            lost_churn: r.u64(CTX)?,
            forwards: r.u64(CTX)?,
            contacts_opened: r.u64(CTX)?,
            contacts_closed: r.u64(CTX)?,
            expired_on_node: r.u64(CTX)?,
        };
        Ok(ObsMetrics {
            landmarks,
            bandwidth,
            coverage,
            route_cache,
            event_counts,
            delay_hist,
            hop_hist,
            totals,
        })
    }

    fn lm(&mut self, id: u16) -> &mut LandmarkCounters {
        self.landmarks.get_or_default(id)
    }

    /// A packet entered the queue at `place` (no-op for carrier nodes).
    fn enqueue(&mut self, place: Place) {
        if let Place::Pending(lm) | Place::Station(lm) = place {
            let c = self.lm(lm.0);
            c.queue_depth += 1;
            c.queue_peak = c.queue_peak.max(c.queue_depth);
        }
    }

    /// A packet left the queue at `place` (no-op for carrier nodes).
    fn dequeue(&mut self, place: Place) {
        if let Place::Pending(lm) | Place::Station(lm) = place {
            let c = self.lm(lm.0);
            c.queue_depth = c.queue_depth.saturating_sub(1);
        }
    }

    /// Fold one event into the registries.
    pub fn apply(&mut self, ev: &SimEvent) {
        self.event_counts.bump(ev.kind_index());
        match *ev {
            SimEvent::ContactOpen { .. } => self.totals.contacts_opened += 1,
            SimEvent::ContactClose { .. } => self.totals.contacts_closed += 1,
            SimEvent::UnitBoundary { .. } => {}
            SimEvent::PacketGenerated { src, start, .. } => {
                self.totals.generated += 1;
                self.lm(src.0).generated += 1;
                if let Some(place) = start {
                    self.enqueue(place);
                }
            }
            SimEvent::PacketForwarded { from, to, .. } => {
                self.totals.forwards += 1;
                self.dequeue(from);
                self.enqueue(to);
                if let Place::Station(lm) = to {
                    self.lm(lm.0).uplinks += 1;
                }
                if let Place::Station(lm) | Place::Pending(lm) = from {
                    self.lm(lm.0).downlinks += 1;
                }
            }
            SimEvent::PacketDelivered {
                lm,
                delay,
                hops,
                from,
                ..
            } => {
                self.totals.delivered += 1;
                self.dequeue(from);
                self.lm(lm.0).delivered += 1;
                let bucket = DELAY_BUCKET_EDGES_SECS
                    .iter()
                    .position(|&edge| delay.0 <= edge)
                    .unwrap_or(DELAY_BUCKETS - 1);
                if let Some(slot) = self.delay_hist.get_mut(bucket) {
                    *slot += 1;
                }
                let hop_bucket = (hops as usize).min(HOP_BUCKETS - 1);
                if let Some(slot) = self.hop_hist.get_mut(hop_bucket) {
                    *slot += 1;
                }
            }
            SimEvent::PacketExpired { from, .. } => {
                self.totals.expired += 1;
                self.dequeue(from);
                match from {
                    Place::Pending(lm) | Place::Station(lm) => self.lm(lm.0).expired += 1,
                    Place::Node(_) => self.totals.expired_on_node += 1,
                }
            }
            SimEvent::PacketLost { from, kind, .. } => {
                match kind {
                    LossKind::Outage => self.totals.lost_outage += 1,
                    LossKind::Churn => self.totals.lost_churn += 1,
                }
                if let Some(place) = from {
                    self.dequeue(place);
                    if let Place::Pending(lm) | Place::Station(lm) = place {
                        self.lm(lm.0).lost += 1;
                    }
                }
            }
            SimEvent::StationDown { .. }
            | SimEvent::StationUp { .. }
            | SimEvent::NodeFailed { .. }
            | SimEvent::NodeRecovered { .. }
            | SimEvent::CheckpointWritten { .. }
            | SimEvent::Restored { .. } => {}
            SimEvent::TableExchanged { to, .. } => self.lm(to.0).table_exchanges += 1,
            SimEvent::BandwidthUpdated {
                from, to, value, ..
            } => {
                self.bandwidth.set(from.0, to.0, value);
            }
            SimEvent::MisTransit { lm, uploaded, .. } => {
                let c = self.lm(lm.0);
                c.mis_transits += 1;
                if uploaded {
                    c.mis_transit_uploads += 1;
                }
            }
            SimEvent::RetryQueued { lm, .. } => self.lm(lm.0).retries += 1,
            SimEvent::RouteCoverage {
                lm,
                coverage,
                revision,
                ..
            } => {
                self.coverage.insert(lm.0, (coverage, revision));
            }
            SimEvent::RouteCacheHit { lm, count, .. } => {
                self.route_cache.get_or_default(lm.0).0 = count;
            }
            SimEvent::RouteCacheMiss { lm, count, .. } => {
                self.route_cache.get_or_default(lm.0).1 = count;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
    use dtnflow_core::time::{SimDuration, SimTime};

    #[test]
    fn queue_depth_follows_forwarding() {
        let mut m = ObsMetrics::new();
        let l0 = LandmarkId(0);
        m.apply(&SimEvent::PacketGenerated {
            at: SimTime(0),
            pkt: PacketId(0),
            src: l0,
            dst: LandmarkId(1),
            start: Some(Place::Pending(l0)),
        });
        assert_eq!(m.landmarks[0].queue_depth, 1);
        assert_eq!(m.landmarks[0].queue_peak, 1);
        m.apply(&SimEvent::PacketForwarded {
            at: SimTime(5),
            pkt: PacketId(0),
            from: Place::Pending(l0),
            to: Place::Node(NodeId(3)),
        });
        assert_eq!(m.landmarks[0].queue_depth, 0);
        assert_eq!(m.landmarks[0].downlinks, 1);
        m.apply(&SimEvent::PacketForwarded {
            at: SimTime(9),
            pkt: PacketId(0),
            from: Place::Node(NodeId(3)),
            to: Place::Station(LandmarkId(1)),
        });
        assert_eq!(m.landmarks[1].queue_depth, 1);
        assert_eq!(m.landmarks[1].uplinks, 1);
        m.apply(&SimEvent::PacketDelivered {
            at: SimTime(9),
            pkt: PacketId(0),
            lm: LandmarkId(1),
            delay: SimDuration(9),
            hops: 2,
            from: Place::Station(LandmarkId(1)),
        });
        assert_eq!(m.landmarks[1].queue_depth, 0);
        assert_eq!(m.totals.delivered, 1);
        // 9 s lands in the first (<= 1 h) bucket; 2 hops in bucket 2.
        assert_eq!(m.delay_hist[0], 1);
        assert_eq!(m.hop_hist[2], 1);
    }

    #[test]
    fn delay_buckets_cover_edges_and_overflow() {
        let mut m = ObsMetrics::new();
        for (i, secs) in [3_600u64, 3_601, 1_382_400, 1_382_401]
            .into_iter()
            .enumerate()
        {
            m.apply(&SimEvent::PacketDelivered {
                at: SimTime(secs),
                pkt: PacketId(i as u32),
                lm: LandmarkId(0),
                delay: SimDuration(secs),
                hops: 20,
                from: Place::Node(NodeId(0)),
            });
        }
        assert_eq!(m.delay_hist[0], 1); // exactly 1 h is upper-inclusive
        assert_eq!(m.delay_hist[1], 1); // 1 h + 1 s spills to the next bucket
        assert_eq!(m.delay_hist[DELAY_BUCKETS - 2], 1); // exactly 16 d
        assert_eq!(m.delay_hist[DELAY_BUCKETS - 1], 1); // overflow
        assert_eq!(m.hop_hist[HOP_BUCKETS - 1], 4); // 20 hops all overflow
    }

    #[test]
    fn loss_kinds_are_separated() {
        let mut m = ObsMetrics::new();
        m.apply(&SimEvent::PacketLost {
            at: SimTime(1),
            pkt: PacketId(0),
            from: Some(Place::Station(LandmarkId(2))),
            kind: LossKind::Outage,
        });
        m.apply(&SimEvent::PacketLost {
            at: SimTime(2),
            pkt: PacketId(1),
            from: Some(Place::Node(NodeId(1))),
            kind: LossKind::Churn,
        });
        m.apply(&SimEvent::PacketLost {
            at: SimTime(3),
            pkt: PacketId(2),
            from: None,
            kind: LossKind::Outage,
        });
        assert_eq!(m.totals.lost_outage, 2);
        assert_eq!(m.totals.lost_churn, 1);
        assert_eq!(m.landmarks[2].lost, 1);
    }

    #[test]
    fn gauges_keep_latest_sample() {
        let mut m = ObsMetrics::new();
        for (unit, v) in [(1u64, 0.5f64), (2, 0.75)] {
            m.apply(&SimEvent::BandwidthUpdated {
                at: SimTime(unit * 100),
                from: LandmarkId(0),
                to: LandmarkId(1),
                value: v,
            });
            m.apply(&SimEvent::RouteCoverage {
                at: SimTime(unit * 100),
                lm: LandmarkId(0),
                coverage: v,
                revision: unit,
            });
            m.apply(&SimEvent::RouteCacheHit {
                at: SimTime(unit * 100),
                lm: LandmarkId(0),
                count: unit * 10,
            });
            m.apply(&SimEvent::RouteCacheMiss {
                at: SimTime(unit * 100),
                lm: LandmarkId(0),
                count: unit,
            });
        }
        assert_eq!(m.bandwidth.get(0, 1), Some(0.75));
        assert_eq!(m.coverage[0], (0.75, 2));
        assert_eq!(m.route_cache[0], (20, 2));
    }
}
