//! Deferred event buffers for the sharded engine (DESIGN.md §13).
//!
//! Parallel compute phases may not touch the sink directly — a sink
//! records "in simulation order with monotonically non-decreasing
//! timestamps", and completion order under threads is not simulation
//! order. Workers therefore *buffer* fully-built [`SimEvent`]s, and the
//! commit phase drains the buffers in a deterministic order (ascending
//! commit-group index), reproducing the exact sequence the sequential
//! engine would have emitted. The trace stream stays byte-stable for any
//! shard count — the cross-shard differential tests pin that.

use crate::event::SimEvent;
use crate::sink::TraceSink;

/// An ordered buffer of events assembled off-thread during a parallel
/// phase. Within one buffer, events keep their push order (the owning
/// worker's deterministic iteration order).
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Vec<SimEvent>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> EventBuffer {
        EventBuffer::default()
    }

    /// Append one event.
    pub fn record(&mut self, ev: SimEvent) {
        self.events.push(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drain every buffered event into `sink`, in push order.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for ev in self.events.drain(..) {
            sink.record(ev);
        }
    }

    /// Discard the contents (untraced runs).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// One [`EventBuffer`] per commit group, drained in ascending group
/// index.
///
/// The group index is whatever total order the commit phase walks —
/// the sharded router uses one group per landmark, so the flush order
/// is ascending landmark id regardless of which shard computed which
/// group (arbitrary partition maps included).
#[derive(Debug)]
pub struct ShardBuffers {
    groups: Vec<EventBuffer>,
}

impl ShardBuffers {
    /// `n` empty groups.
    pub fn new(n: usize) -> ShardBuffers {
        ShardBuffers {
            groups: (0..n).map(|_| EventBuffer::new()).collect(),
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Replace group `idx`'s buffer (commit phase: adopt a worker's
    /// buffer wholesale instead of copying events). Out-of-range indexes
    /// are ignored — the plan that produced the buffers also sized this
    /// container, so a miss is a harmless no-op, not a panic path.
    pub fn set(&mut self, idx: usize, buf: EventBuffer) {
        if let Some(slot) = self.groups.get_mut(idx) {
            *slot = buf;
        }
    }

    /// Mutable access to group `idx`'s buffer, growing the container if
    /// needed (workers that push directly).
    pub fn group_mut(&mut self, idx: usize) -> &mut EventBuffer {
        if idx >= self.groups.len() {
            self.groups.resize_with(idx + 1, EventBuffer::new);
        }
        &mut self.groups[idx]
    }

    /// Total buffered events across all groups.
    pub fn total_events(&self) -> usize {
        self.groups.iter().map(EventBuffer::len).sum()
    }

    /// Drain every group into `sink` in ascending group index — the
    /// deterministic flush the sharded commit phase relies on.
    pub fn drain_into(&mut self, sink: &mut dyn TraceSink) {
        for g in &mut self.groups {
            g.drain_into(sink);
        }
    }

    /// Discard all contents (untraced runs).
    pub fn clear(&mut self) {
        for g in &mut self.groups {
            g.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Recorder;
    use dtnflow_core::time::SimTime;

    fn ev(unit: u64) -> SimEvent {
        SimEvent::UnitBoundary {
            at: SimTime(unit),
            unit,
        }
    }

    #[test]
    fn buffer_preserves_push_order() {
        let mut b = EventBuffer::new();
        for u in [3, 1, 2] {
            b.record(ev(u));
        }
        assert_eq!(b.len(), 3);
        let mut rec = Recorder::new(8);
        b.drain_into(&mut rec);
        assert!(b.is_empty());
        let got: Vec<u64> = rec.events().map(|e| e.at().0).collect();
        assert_eq!(got, vec![3, 1, 2]);
    }

    #[test]
    fn shard_buffers_flush_in_ascending_group_order() {
        let mut bufs = ShardBuffers::new(3);
        // Fill groups out of order, as racing workers would finish.
        bufs.group_mut(2).record(ev(20));
        bufs.group_mut(0).record(ev(0));
        bufs.group_mut(1).record(ev(10));
        bufs.group_mut(2).record(ev(21));
        assert_eq!(bufs.total_events(), 4);
        let mut rec = Recorder::new(8);
        bufs.drain_into(&mut rec);
        assert_eq!(bufs.total_events(), 0);
        let got: Vec<u64> = rec.events().map(|e| e.at().0).collect();
        assert_eq!(got, vec![0, 10, 20, 21]);
    }

    #[test]
    fn set_adopts_a_worker_buffer_and_ignores_out_of_range() {
        let mut bufs = ShardBuffers::new(2);
        let mut w = EventBuffer::new();
        w.record(ev(7));
        bufs.set(1, w);
        let mut stray = EventBuffer::new();
        stray.record(ev(9));
        bufs.set(5, stray); // ignored: container sized by the plan
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs.total_events(), 1);
    }

    #[test]
    fn group_mut_grows_on_demand_and_clear_discards() {
        let mut bufs = ShardBuffers::new(1);
        bufs.group_mut(4).record(ev(1));
        assert_eq!(bufs.len(), 5);
        bufs.clear();
        assert_eq!(bufs.total_events(), 0);
    }
}
