//! `obs-validate` — check emitted observability JSON against its schema.
//!
//! Usage: `obs-validate FILE...`
//!
//! Each file must parse as JSON and carry a known `schema` tag
//! (`dtnflow-obs-snapshot-v1`, `dtnflow-obs-report-v1`, or
//! `dtnflow-obs-bench-v1`); the document is then structurally validated.
//! Exits non-zero on the first problem, printing one line per file.
//! CI runs this against the output of a traced quick experiment.

use std::process::ExitCode;

use dtnflow_obs::{json, schema};

fn validate_file(path: &str) -> Result<&'static str, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read failed: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("JSON parse failed: {e}"))?;
    schema::validate_any(&doc)?;
    match doc.get("schema").and_then(json::Value::as_str) {
        Some("dtnflow-obs-snapshot-v1") => Ok("snapshot"),
        Some("dtnflow-obs-report-v1") => Ok("report"),
        Some("dtnflow-obs-bench-v1") => Ok("bench"),
        _ => Ok("unknown"),
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs-validate FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(kind) => println!("{path}: OK ({kind})"),
            Err(msg) => {
                eprintln!("{path}: INVALID — {msg}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
