//! Structural validation for the JSON documents this crate emits.
//!
//! Used by the `obs-validate` binary (CI runs it against a real traced
//! experiment) and by tests. Validation is structural, not exhaustive: it
//! checks the schema tag, required keys, types, and cross-field
//! consistency such as histogram lengths.

use crate::json::Value;
use crate::metrics::DELAY_BUCKET_EDGES_SECS;
use crate::snapshot::{BENCH_SCHEMA, REPORT_SCHEMA, SNAPSHOT_SCHEMA};

fn require<'v>(doc: &'v Value, key: &str, what: &str) -> Result<&'v Value, String> {
    doc.get(key)
        .ok_or_else(|| format!("{what}: missing key {key:?}"))
}

fn require_count(doc: &Value, key: &str, what: &str) -> Result<u64, String> {
    let n = require(doc, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: {key:?} is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("{what}: {key:?} is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn require_number(doc: &Value, key: &str, what: &str) -> Result<f64, String> {
    require(doc, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: {key:?} is not a number"))
}

fn require_array<'v>(doc: &'v Value, key: &str, what: &str) -> Result<&'v [Value], String> {
    require(doc, key, what)?
        .as_array()
        .ok_or_else(|| format!("{what}: {key:?} is not an array"))
}

/// Validate a single-run snapshot document (`dtnflow-obs-snapshot-v1`).
pub fn validate_snapshot(doc: &Value) -> Result<(), String> {
    let what = "snapshot";
    let schema = require(doc, "schema", what)?.as_str();
    if schema != Some(SNAPSHOT_SCHEMA) {
        return Err(format!(
            "{what}: schema tag {schema:?} != {SNAPSHOT_SCHEMA:?}"
        ));
    }
    let recorded = require_count(doc, "events_recorded", what)?;
    let dropped = require_count(doc, "events_dropped", what)?;
    require_count(doc, "ring_capacity", what)?;
    if dropped > recorded {
        return Err(format!(
            "{what}: events_dropped {dropped} > events_recorded {recorded}"
        ));
    }

    let totals = require(doc, "totals", what)?;
    for key in [
        "generated",
        "delivered",
        "expired",
        "lost_outage",
        "lost_churn",
        "forwards",
        "contacts_opened",
        "contacts_closed",
        "expired_on_node",
    ] {
        require_count(totals, key, "snapshot.totals")?;
    }

    for row in require_array(doc, "landmarks", what)? {
        let inner = "snapshot.landmarks[]";
        for key in [
            "lm",
            "generated",
            "uplinks",
            "downlinks",
            "delivered",
            "expired",
            "lost",
            "mis_transits",
            "mis_transit_uploads",
            "retries",
            "table_exchanges",
            "queue_depth",
            "queue_peak",
        ] {
            require_count(row, key, inner)?;
        }
    }

    for link in require_array(doc, "bandwidth", what)? {
        let inner = "snapshot.bandwidth[]";
        require_count(link, "from", inner)?;
        require_count(link, "to", inner)?;
        require_number(link, "value", inner)?;
    }

    for cov in require_array(doc, "route_coverage", what)? {
        let inner = "snapshot.route_coverage[]";
        require_count(cov, "lm", inner)?;
        let c = require_number(cov, "coverage", inner)?;
        if !(0.0..=1.0).contains(&c) {
            return Err(format!("{inner}: coverage {c} outside [0, 1]"));
        }
        require_count(cov, "revision", inner)?;
    }

    for rc in require_array(doc, "route_cache", what)? {
        let inner = "snapshot.route_cache[]";
        require_count(rc, "lm", inner)?;
        require_count(rc, "hits", inner)?;
        require_count(rc, "misses", inner)?;
    }

    let delay = require(doc, "delay_histogram", what)?;
    let edges = require_array(delay, "edges_secs", "snapshot.delay_histogram")?;
    let counts = require_array(delay, "counts", "snapshot.delay_histogram")?;
    if edges.len() != DELAY_BUCKET_EDGES_SECS.len() {
        return Err(format!(
            "snapshot.delay_histogram: {} edges, expected {}",
            edges.len(),
            DELAY_BUCKET_EDGES_SECS.len()
        ));
    }
    if counts.len() != edges.len() + 1 {
        return Err(format!(
            "snapshot.delay_histogram: {} counts, expected {} (edges + overflow)",
            counts.len(),
            edges.len() + 1
        ));
    }

    let hops = require(doc, "hop_histogram", what)?;
    let hop_counts = require_array(hops, "counts", "snapshot.hop_histogram")?;
    if hop_counts.is_empty() {
        return Err("snapshot.hop_histogram: empty counts".to_owned());
    }
    Ok(())
}

/// Validate a multi-cell experiment report (`dtnflow-obs-report-v1`).
pub fn validate_report(doc: &Value) -> Result<(), String> {
    let what = "report";
    let schema = require(doc, "schema", what)?.as_str();
    if schema != Some(REPORT_SCHEMA) {
        return Err(format!(
            "{what}: schema tag {schema:?} != {REPORT_SCHEMA:?}"
        ));
    }
    require(doc, "experiment", what)?
        .as_str()
        .ok_or_else(|| format!("{what}: experiment is not a string"))?;
    let cells = require_array(doc, "cells", what)?;
    if cells.is_empty() {
        return Err(format!("{what}: no cells"));
    }
    for cell in cells {
        require(cell, "label", "report.cells[]")?
            .as_str()
            .ok_or_else(|| "report.cells[]: label is not a string".to_owned())?;
        let snap = require(cell, "snapshot", "report.cells[]")?;
        validate_snapshot(snap)?;
    }
    Ok(())
}

/// Validate the `BENCH_obs.json` timing baseline (`dtnflow-obs-bench-v1`).
pub fn validate_bench(doc: &Value) -> Result<(), String> {
    let what = "bench";
    let schema = require(doc, "schema", what)?.as_str();
    if schema != Some(BENCH_SCHEMA) {
        return Err(format!("{what}: schema tag {schema:?} != {BENCH_SCHEMA:?}"));
    }
    for entry in require_array(doc, "entries", what)? {
        let inner = "bench.entries[]";
        require(entry, "id", inner)?
            .as_str()
            .ok_or_else(|| format!("{inner}: id is not a string"))?;
        let wall = require_number(entry, "wall_secs", inner)?;
        if wall < 0.0 {
            return Err(format!("{inner}: negative wall_secs {wall}"));
        }
        require_count(entry, "events_recorded", inner)?;
        require_count(entry, "events_dropped", inner)?;
    }
    Ok(())
}

/// Dispatch on the document's `schema` tag.
pub fn validate_any(doc: &Value) -> Result<(), String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(SNAPSHOT_SCHEMA) => validate_snapshot(doc),
        Some(REPORT_SCHEMA) => validate_report(doc),
        Some(BENCH_SCHEMA) => validate_bench(doc),
        Some(other) => Err(format!("unknown schema tag {other:?}")),
        None => Err("document has no \"schema\" string field".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::metrics::ObsMetrics;
    use crate::snapshot::{bench_json, report_json, BenchEntry, Snapshot};

    fn empty_snapshot() -> Snapshot {
        Snapshot::from_metrics(&ObsMetrics::new(), 0, 0, 16)
    }

    #[test]
    fn emitted_documents_validate() {
        let snap = empty_snapshot();
        validate_any(&parse(&snap.to_json()).unwrap()).unwrap();
        let report = report_json("resilience", &[("cell".to_owned(), empty_snapshot())]);
        validate_any(&parse(&report).unwrap()).unwrap();
        let bench = bench_json(&[BenchEntry {
            id: "resilience".to_owned(),
            wall_secs: 0.25,
            events_recorded: 3,
            events_dropped: 1,
        }]);
        validate_any(&parse(&bench).unwrap()).unwrap();
    }

    #[test]
    fn tampered_documents_fail() {
        let snap = empty_snapshot();
        let good = snap.to_json();
        // Wrong schema tag.
        let bad = good.replace(SNAPSHOT_SCHEMA, "nonsense-v9");
        assert!(validate_any(&parse(&bad).unwrap()).is_err());
        // Dropped > recorded.
        let bad = good.replace("\"events_dropped\": 0", "\"events_dropped\": 99");
        assert!(validate_snapshot(&parse(&bad).unwrap()).is_err());
        // Missing required key.
        let bad = good.replace("\"totals\"", "\"totalz\"");
        assert!(validate_snapshot(&parse(&bad).unwrap()).is_err());
        // Negative count.
        let bad = good.replace("\"events_recorded\": 0", "\"events_recorded\": -1");
        assert!(validate_snapshot(&parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn report_requires_cells() {
        let doc = parse(&format!(
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"experiment\":\"x\",\"cells\":[]}}"
        ))
        .unwrap();
        assert!(validate_report(&doc).is_err());
    }
}
