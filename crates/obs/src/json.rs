//! Minimal self-contained JSON value model, writer, and parser.
//!
//! The workspace deliberately carries no serde dependency (offline build,
//! vendored stubs only), so snapshots are serialized by hand. Object keys
//! live in a `BTreeMap`, making rendered output deterministic. The parser
//! exists for the `obs-validate` binary and the schema tests; it accepts
//! exactly the subset the writer emits plus standard JSON whitespace.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; integral values render without a
    /// fractional part. Non-finite values render as `null`.
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience constructor for object values.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Integer shorthand (exact for magnitudes below 2^53).
    pub fn int(n: u64) -> Value {
        Value::Number(n as f64)
    }

    /// String shorthand.
    pub fn str(s: &str) -> Value {
        Value::String(s.to_owned())
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Render with two-space indentation (stable, human-readable).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => render_number(*n, out),
            Value::String(s) => render_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    render_string(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; snapshots never contain them, but render
        // defensively rather than emitting an unparsable token.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float form: deterministic
        // for identical bit patterns and re-parsable.
        let _ = write!(out, "{n:?}");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a message describing the first error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    let end = *pos + lit.len();
    if bytes.get(*pos..end) == Some(lit.as_bytes()) {
        *pos = end;
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    // Caller guarantees bytes[*pos] == b'"'.
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive as
                // raw bytes; re-decode from the remaining slice).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf-8 in string".to_owned())?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_owned()),
                }
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::object([
            ("name".to_owned(), Value::str("dtn")),
            ("count".to_owned(), Value::int(42)),
            ("ratio".to_owned(), Value::Number(0.5)),
            ("flag".to_owned(), Value::Bool(true)),
            ("none".to_owned(), Value::Null),
            (
                "list".to_owned(),
                Value::Array(vec![Value::int(1), Value::int(2)]),
            ),
        ]);
        let compact = v.render();
        assert_eq!(
            compact,
            r#"{"count":42,"flag":true,"list":[1,2],"name":"dtn","none":null,"ratio":0.5}"#
        );
        assert_eq!(parse(&compact).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::str("a\"b\\c\nd\te\u{1}");
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        //  renders as an escape, not a control byte.
        assert!(rendered.contains("\\u0001"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Value::Number(f64::INFINITY).render(), "null");
        assert_eq!(Value::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Value::Number(3.0).render(), "3");
        assert_eq!(Value::Number(-2.0).render(), "-2");
        assert_eq!(Value::Number(2.25).render(), "2.25");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("123abc").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("trux").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let text = r#" { "a" : [ { "b" : [ 1 , 2.5 , -3 ] } , null , false ] } "#;
        let v = parse(text).unwrap();
        let inner = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(inner.len(), 3);
        assert_eq!(
            inner[0].get("b").and_then(Value::as_array).unwrap()[1],
            Value::Number(2.5)
        );
    }
}
