//! Trace sinks: where emitted `SimEvent`s go.
//!
//! The simulator holds an `Option<Box<dyn TraceSink>>`; with no sink
//! attached, event construction is skipped entirely (the emit closure is
//! never invoked), so tracing has zero overhead when disabled. The
//! `Recorder` keeps the last `capacity` events in a bounded
//! flight-recorder ring buffer and folds *every* event (including ones
//! later evicted from the ring) into an `ObsMetrics` registry.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Write as _;

use dtnflow_snapshot::{Reader, SnapshotError, Writer};

use crate::event::SimEvent;
use crate::metrics::ObsMetrics;
use crate::snapshot::Snapshot;

/// Receiver for structured simulation events.
///
/// `Debug` is a supertrait because sinks are stored inside `Debug`-derived
/// simulator state. `into_any` enables recovering a concrete sink (e.g. a
/// [`Recorder`]) from the boxed trait object a run returns.
pub trait TraceSink: std::fmt::Debug {
    /// Observe one event. Called in simulation order with monotonically
    /// non-decreasing timestamps.
    fn record(&mut self, ev: SimEvent);

    /// Downcast support: surrender the box as `Any`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;

    /// In-place downcast support for checkpointing: sinks whose state can
    /// be captured mid-run (currently the [`Recorder`]) override this to
    /// expose themselves; the default (`None`) marks the sink as not
    /// checkpointable.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// A sink that discards everything (useful for overhead measurements and
/// as an explicit "tracing attached but ignored" baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _ev: SimEvent) {}

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Default ring capacity used by [`Recorder::default`].
pub const DEFAULT_RING_CAPACITY: usize = 4_096;

/// Bounded flight recorder plus always-on metric fold.
///
/// The ring holds the most recent `capacity` events; older events are
/// evicted (counted in `dropped`) but remain reflected in the folded
/// metrics, so counters and histograms are exact even when the ring
/// wraps.
#[derive(Debug, Clone)]
pub struct Recorder {
    capacity: usize,
    ring: VecDeque<SimEvent>,
    recorded: u64,
    dropped: u64,
    metrics: ObsMetrics,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new(DEFAULT_RING_CAPACITY)
    }
}

impl Recorder {
    /// Create a recorder whose ring holds at most `capacity` events
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Recorder {
        let capacity = capacity.max(1);
        Recorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            recorded: 0,
            dropped: 0,
            metrics: ObsMetrics::new(),
        }
    }

    /// Configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events observed, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SimEvent> {
        self.ring.iter()
    }

    /// The folded metric registries.
    pub fn metrics(&self) -> &ObsMetrics {
        &self.metrics
    }

    /// Export the current registries plus ring statistics.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::from_metrics(
            &self.metrics,
            self.recorded,
            self.dropped,
            self.capacity as u64,
        )
    }

    /// Render the retained events as one line each (oldest first).
    ///
    /// This is the byte-stable textual form compared by the cross-process
    /// trace-stability tests.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for ev in &self.ring {
            let _ = writeln!(out, "{ev}");
        }
        out
    }

    /// Recover a `Recorder` from a boxed sink, if that is what it is.
    pub fn downcast(sink: Box<dyn TraceSink>) -> Option<Recorder> {
        sink.into_any().downcast::<Recorder>().ok().map(|r| *r)
    }

    /// Checkpoint encoding (DESIGN.md §11): ring statistics, the retained
    /// events (oldest first) and the folded metric registries. A restored
    /// recorder continues recording byte-identically to one that never
    /// stopped.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.capacity);
        w.put_u64(self.recorded);
        w.put_u64(self.dropped);
        w.put_usize(self.ring.len());
        for ev in &self.ring {
            ev.encode(w);
        }
        self.metrics.encode(w);
    }

    /// Inverse of [`Recorder::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Recorder, SnapshotError> {
        const CTX: &str = "Recorder";
        let capacity = r.usize(CTX)?;
        if capacity == 0 {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let recorded = r.u64(CTX)?;
        let dropped = r.u64(CTX)?;
        let n = r.seq_len("Recorder.ring")?;
        if n > capacity {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut ring = VecDeque::with_capacity(capacity);
        for _ in 0..n {
            ring.push_back(SimEvent::decode(r)?);
        }
        let metrics = ObsMetrics::decode(r)?;
        Ok(Recorder {
            capacity,
            ring,
            recorded,
            dropped,
            metrics,
        })
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, ev: SimEvent) {
        self.metrics.apply(&ev);
        self.recorded += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::ids::LandmarkId;
    use dtnflow_core::time::SimTime;

    fn unit_event(i: u64) -> SimEvent {
        SimEvent::UnitBoundary {
            at: SimTime(i),
            unit: i,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = Recorder::new(3);
        for i in 0..10 {
            r.record(unit_event(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 7);
        let kept: Vec<u64> = r.events().map(|e| e.at().0).collect();
        assert_eq!(kept, vec![7, 8, 9]);
        // Metrics reflect all 10 events, not just the retained 3.
        assert_eq!(r.metrics().event_counts["unit_boundary"], 10);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = Recorder::new(0);
        assert_eq!(r.capacity(), 1);
    }

    #[test]
    fn render_log_matches_ring() {
        let mut r = Recorder::new(8);
        r.record(unit_event(5));
        r.record(SimEvent::StationDown {
            at: SimTime(6),
            lm: LandmarkId(1),
        });
        assert_eq!(r.render_log(), "@5 unit_boundary u5\n@6 station_down l1\n");
    }

    #[test]
    fn downcast_roundtrip() {
        let mut r = Recorder::new(4);
        r.record(unit_event(1));
        let boxed: Box<dyn TraceSink> = Box::new(r);
        let back = Recorder::downcast(boxed).unwrap();
        assert_eq!(back.recorded(), 1);
        assert!(Recorder::downcast(Box::new(NoopSink)).is_none());
    }

    #[test]
    fn snapshot_reports_ring_stats() {
        let mut r = Recorder::new(2);
        for i in 0..5 {
            r.record(unit_event(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events_recorded, 5);
        assert_eq!(snap.events_dropped, 3);
        assert_eq!(snap.ring_capacity, 2);
    }
}
