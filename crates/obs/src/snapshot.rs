//! Point-in-time export of the observability registries.
//!
//! A `Snapshot` is plain data: what the recorder saw, flattened into
//! sorted rows ready for JSON (schema `dtnflow-obs-snapshot-v1`) or CSV.
//! Rendering is fully deterministic — BTreeMap-ordered rows, integral
//! numbers without fractions, shortest-round-trip floats.

use crate::json::Value;
use crate::metrics::{LandmarkCounters, ObsMetrics, Totals, DELAY_BUCKET_EDGES_SECS};

/// Schema tag embedded in every snapshot JSON document.
pub const SNAPSHOT_SCHEMA: &str = "dtnflow-obs-snapshot-v1";
/// Schema tag for a multi-cell experiment observability report.
pub const REPORT_SCHEMA: &str = "dtnflow-obs-report-v1";
/// Schema tag for the `BENCH_obs.json` throughput/timing baseline.
pub const BENCH_SCHEMA: &str = "dtnflow-obs-bench-v1";

/// One per-landmark row in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LandmarkRow {
    pub lm: u16,
    pub counters: LandmarkCounters,
}

/// Exported observability state for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Total events observed (including those evicted from the ring).
    pub events_recorded: u64,
    /// Events evicted from the bounded ring buffer.
    pub events_dropped: u64,
    /// Configured ring capacity.
    pub ring_capacity: u64,
    /// Event counts per kind tag, sorted by tag.
    pub event_counts: Vec<(String, u64)>,
    /// Per-landmark counter rows, sorted by landmark id.
    pub landmarks: Vec<LandmarkRow>,
    /// Latest EWMA bandwidth per directed link, sorted by (from, to).
    pub bandwidth: Vec<(u16, u16, f64)>,
    /// Latest (coverage, revision) per landmark, sorted by landmark id.
    pub route_coverage: Vec<(u16, f64, u64)>,
    /// Latest cumulative route-cache (hits, misses) per landmark,
    /// sorted by landmark id (DESIGN.md §14).
    pub route_cache: Vec<(u16, u64, u64)>,
    /// Delivery-delay histogram counts (edges in
    /// [`DELAY_BUCKET_EDGES_SECS`] plus one overflow bucket).
    pub delay_hist: Vec<u64>,
    /// Delivery hop-count histogram (0..=15, then 16+).
    pub hop_hist: Vec<u64>,
    /// Run-wide totals.
    pub totals: Totals,
}

impl Snapshot {
    /// Flatten folded metrics plus ring statistics into a snapshot.
    pub fn from_metrics(
        metrics: &ObsMetrics,
        events_recorded: u64,
        events_dropped: u64,
        ring_capacity: u64,
    ) -> Snapshot {
        Snapshot {
            events_recorded,
            events_dropped,
            ring_capacity,
            event_counts: metrics
                .event_counts
                .iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            landmarks: metrics
                .landmarks
                .iter()
                .map(|(lm, &counters)| LandmarkRow { lm, counters })
                .collect(),
            bandwidth: metrics.bandwidth.iter().collect(),
            route_coverage: metrics
                .coverage
                .iter()
                .map(|(lm, &(coverage, revision))| (lm, coverage, revision))
                .collect(),
            route_cache: metrics
                .route_cache
                .iter()
                .map(|(lm, &(hits, misses))| (lm, hits, misses))
                .collect(),
            delay_hist: metrics.delay_hist.to_vec(),
            hop_hist: metrics.hop_hist.to_vec(),
            totals: metrics.totals,
        }
    }

    /// Build the JSON value tree for this snapshot.
    pub fn to_json_value(&self) -> Value {
        let t = &self.totals;
        Value::object([
            ("schema".to_owned(), Value::str(SNAPSHOT_SCHEMA)),
            (
                "events_recorded".to_owned(),
                Value::int(self.events_recorded),
            ),
            ("events_dropped".to_owned(), Value::int(self.events_dropped)),
            ("ring_capacity".to_owned(), Value::int(self.ring_capacity)),
            (
                "event_counts".to_owned(),
                Value::object(
                    self.event_counts
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::int(*v))),
                ),
            ),
            (
                "totals".to_owned(),
                Value::object([
                    ("generated".to_owned(), Value::int(t.generated)),
                    ("delivered".to_owned(), Value::int(t.delivered)),
                    ("expired".to_owned(), Value::int(t.expired)),
                    ("lost_outage".to_owned(), Value::int(t.lost_outage)),
                    ("lost_churn".to_owned(), Value::int(t.lost_churn)),
                    ("forwards".to_owned(), Value::int(t.forwards)),
                    ("contacts_opened".to_owned(), Value::int(t.contacts_opened)),
                    ("contacts_closed".to_owned(), Value::int(t.contacts_closed)),
                    ("expired_on_node".to_owned(), Value::int(t.expired_on_node)),
                ]),
            ),
            (
                "landmarks".to_owned(),
                Value::Array(self.landmarks.iter().map(landmark_row_json).collect()),
            ),
            (
                "bandwidth".to_owned(),
                Value::Array(
                    self.bandwidth
                        .iter()
                        .map(|&(from, to, value)| {
                            Value::object([
                                ("from".to_owned(), Value::int(u64::from(from))),
                                ("to".to_owned(), Value::int(u64::from(to))),
                                ("value".to_owned(), Value::Number(value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "route_coverage".to_owned(),
                Value::Array(
                    self.route_coverage
                        .iter()
                        .map(|&(lm, coverage, revision)| {
                            Value::object([
                                ("lm".to_owned(), Value::int(u64::from(lm))),
                                ("coverage".to_owned(), Value::Number(coverage)),
                                ("revision".to_owned(), Value::int(revision)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "route_cache".to_owned(),
                Value::Array(
                    self.route_cache
                        .iter()
                        .map(|&(lm, hits, misses)| {
                            Value::object([
                                ("lm".to_owned(), Value::int(u64::from(lm))),
                                ("hits".to_owned(), Value::int(hits)),
                                ("misses".to_owned(), Value::int(misses)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "delay_histogram".to_owned(),
                Value::object([
                    (
                        "edges_secs".to_owned(),
                        Value::Array(
                            DELAY_BUCKET_EDGES_SECS
                                .iter()
                                .map(|&e| Value::int(e))
                                .collect(),
                        ),
                    ),
                    (
                        "counts".to_owned(),
                        Value::Array(self.delay_hist.iter().map(|&c| Value::int(c)).collect()),
                    ),
                ]),
            ),
            (
                "hop_histogram".to_owned(),
                Value::object([(
                    "counts".to_owned(),
                    Value::Array(self.hop_hist.iter().map(|&c| Value::int(c)).collect()),
                )]),
            ),
        ])
    }

    /// Pretty-printed JSON document (schema `dtnflow-obs-snapshot-v1`).
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// Per-landmark counter rows as CSV (header + one row per landmark).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "landmark,generated,uplinks,downlinks,delivered,expired,lost,\
             mis_transits,mis_transit_uploads,retries,table_exchanges,queue_depth,queue_peak\n",
        );
        for row in &self.landmarks {
            let c = &row.counters;
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                row.lm,
                c.generated,
                c.uplinks,
                c.downlinks,
                c.delivered,
                c.expired,
                c.lost,
                c.mis_transits,
                c.mis_transit_uploads,
                c.retries,
                c.table_exchanges,
                c.queue_depth,
                c.queue_peak,
            ));
        }
        out
    }
}

fn landmark_row_json(row: &LandmarkRow) -> Value {
    let c = &row.counters;
    Value::object([
        ("lm".to_owned(), Value::int(u64::from(row.lm))),
        ("generated".to_owned(), Value::int(c.generated)),
        ("uplinks".to_owned(), Value::int(c.uplinks)),
        ("downlinks".to_owned(), Value::int(c.downlinks)),
        ("delivered".to_owned(), Value::int(c.delivered)),
        ("expired".to_owned(), Value::int(c.expired)),
        ("lost".to_owned(), Value::int(c.lost)),
        ("mis_transits".to_owned(), Value::int(c.mis_transits)),
        (
            "mis_transit_uploads".to_owned(),
            Value::int(c.mis_transit_uploads),
        ),
        ("retries".to_owned(), Value::int(c.retries)),
        ("table_exchanges".to_owned(), Value::int(c.table_exchanges)),
        ("queue_depth".to_owned(), Value::int(c.queue_depth)),
        ("queue_peak".to_owned(), Value::int(c.queue_peak)),
    ])
}

/// Build a multi-cell experiment report document
/// (schema `dtnflow-obs-report-v1`): one labelled snapshot per
/// experiment cell (sweep point × method).
pub fn report_json(experiment: &str, cells: &[(String, Snapshot)]) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(REPORT_SCHEMA)),
        ("experiment".to_owned(), Value::str(experiment)),
        (
            "cells".to_owned(),
            Value::Array(
                cells
                    .iter()
                    .map(|(label, snap)| {
                        Value::object([
                            ("label".to_owned(), Value::str(label)),
                            ("snapshot".to_owned(), snap.to_json_value()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

/// One entry in the `BENCH_obs.json` timing baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub id: String,
    /// Wall-clock seconds for the experiment (nondeterministic by design;
    /// excluded from determinism tests).
    pub wall_secs: f64,
    pub events_recorded: u64,
    pub events_dropped: u64,
}

/// Build the `BENCH_obs.json` document (schema `dtnflow-obs-bench-v1`).
pub fn bench_json(entries: &[BenchEntry]) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(BENCH_SCHEMA)),
        (
            "entries".to_owned(),
            Value::Array(
                entries
                    .iter()
                    .map(|e| {
                        Value::object([
                            ("id".to_owned(), Value::str(&e.id)),
                            ("wall_secs".to_owned(), Value::Number(e.wall_secs)),
                            ("events_recorded".to_owned(), Value::int(e.events_recorded)),
                            ("events_dropped".to_owned(), Value::int(e.events_dropped)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Place, SimEvent};
    use crate::json;
    use dtnflow_core::ids::{LandmarkId, PacketId};
    use dtnflow_core::time::SimTime;

    fn sample_snapshot() -> Snapshot {
        let mut m = ObsMetrics::new();
        m.apply(&SimEvent::PacketGenerated {
            at: SimTime(10),
            pkt: PacketId(0),
            src: LandmarkId(0),
            dst: LandmarkId(1),
            start: Some(Place::Pending(LandmarkId(0))),
        });
        m.apply(&SimEvent::BandwidthUpdated {
            at: SimTime(900),
            from: LandmarkId(0),
            to: LandmarkId(1),
            value: 0.25,
        });
        Snapshot::from_metrics(&m, 2, 0, 1024)
    }

    #[test]
    fn json_parses_and_carries_schema() {
        let snap = sample_snapshot();
        let doc = json::parse(&snap.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(SNAPSHOT_SCHEMA)
        );
        assert_eq!(
            doc.get("events_recorded").and_then(Value::as_f64),
            Some(2.0)
        );
        let lms = doc.get("landmarks").and_then(Value::as_array).unwrap();
        assert_eq!(lms.len(), 1);
        assert_eq!(lms[0].get("generated").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn json_rendering_is_stable() {
        let snap = sample_snapshot();
        assert_eq!(snap.to_json(), snap.to_json());
    }

    #[test]
    fn csv_has_one_row_per_landmark() {
        let snap = sample_snapshot();
        let csv = snap.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("landmark,generated"));
        assert!(lines[1].starts_with("0,1,"));
    }

    #[test]
    fn report_and_bench_documents_parse() {
        let snap = sample_snapshot();
        let report = report_json("fig11", &[("p0/FLOW".to_owned(), snap)]);
        let doc = json::parse(&report).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(REPORT_SCHEMA)
        );
        let bench = bench_json(&[BenchEntry {
            id: "fig11".to_owned(),
            wall_secs: 1.5,
            events_recorded: 10,
            events_dropped: 0,
        }]);
        let doc = json::parse(&bench).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(BENCH_SCHEMA)
        );
    }
}
