//! Structured simulation events for the flight recorder.
//!
//! Every event carries the simulation timestamp it occurred at (`SimTime`,
//! never wall-clock time), so a recorded stream is deterministic for a
//! fixed scenario and seed. The `Display` impl renders one compact,
//! byte-stable line per event — that rendering is what the cross-process
//! trace-stability test compares.

use std::fmt;

use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::time::{SimDuration, SimTime};

/// Where a packet currently sits, from the tracer's point of view.
///
/// Mirrors the simulator's live `PacketLoc` states; terminal states
/// (delivered/expired/lost) are events, not places.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Place {
    /// Generated at a landmark but not yet picked up by any carrier.
    Pending(LandmarkId),
    /// Carried by a mobile node.
    Node(NodeId),
    /// Buffered in a landmark station's queue.
    Station(LandmarkId),
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Pending(lm) => write!(f, "pending@{lm}"),
            Place::Node(n) => write!(f, "{n}"),
            Place::Station(lm) => write!(f, "station@{lm}"),
        }
    }
}

/// Why a packet was lost (mirrors the simulator's loss reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LossKind {
    /// Dropped because a station was down (record loss / stillborn).
    Outage,
    /// Dropped because its carrier node failed.
    Churn,
}

impl fmt::Display for LossKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossKind::Outage => f.write_str("outage"),
            LossKind::Churn => f.write_str("churn"),
        }
    }
}

/// One structured observability record.
///
/// Variants cover the full packet lifecycle, contact and fault
/// transitions, and the router-internal state changes the paper's
/// evaluation cares about (table exchanges, EWMA bandwidth folds,
/// mis-transit decisions, retry queueing, route coverage).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A node arrived at a landmark station (contact opened).
    ContactOpen {
        at: SimTime,
        node: NodeId,
        lm: LandmarkId,
    },
    /// A node departed a landmark station (contact closed).
    ContactClose {
        at: SimTime,
        node: NodeId,
        lm: LandmarkId,
    },
    /// A time-unit boundary (Eq. 4 bandwidth fold happens here).
    UnitBoundary { at: SimTime, unit: u64 },
    /// A packet entered the simulation. `start` is `None` for stillborn
    /// packets generated at a station that was down.
    PacketGenerated {
        at: SimTime,
        pkt: PacketId,
        src: LandmarkId,
        dst: LandmarkId,
        start: Option<Place>,
    },
    /// A packet moved between a node and a station (either direction).
    PacketForwarded {
        at: SimTime,
        pkt: PacketId,
        from: Place,
        to: Place,
    },
    /// A packet reached its destination landmark.
    PacketDelivered {
        at: SimTime,
        pkt: PacketId,
        lm: LandmarkId,
        delay: SimDuration,
        hops: u32,
        from: Place,
    },
    /// A packet's TTL ran out.
    PacketExpired {
        at: SimTime,
        pkt: PacketId,
        from: Place,
    },
    /// A packet was destroyed by a fault. `from` is `None` for stillborn
    /// packets that never occupied a place.
    PacketLost {
        at: SimTime,
        pkt: PacketId,
        from: Option<Place>,
        kind: LossKind,
    },
    /// A landmark station went down (fault injection).
    StationDown { at: SimTime, lm: LandmarkId },
    /// A landmark station recovered.
    StationUp { at: SimTime, lm: LandmarkId },
    /// A node failed, destroying the packets it carried.
    NodeFailed {
        at: SimTime,
        node: NodeId,
        lost_packets: u64,
    },
    /// A failed node rejoined the simulation.
    NodeRecovered { at: SimTime, node: NodeId },
    /// A carried routing table from `from` was offered to `to`.
    TableExchanged {
        at: SimTime,
        from: LandmarkId,
        to: LandmarkId,
        entries: usize,
        accepted: bool,
    },
    /// End-of-unit EWMA fold produced a new smoothed bandwidth B(from→to).
    BandwidthUpdated {
        at: SimTime,
        from: LandmarkId,
        to: LandmarkId,
        value: f64,
    },
    /// A carrier holding a packet transited to a landmark that was not the
    /// predicted next hop (§IV-D). `uploaded` records the router's
    /// keep-vs-forward decision.
    MisTransit {
        at: SimTime,
        pkt: PacketId,
        node: NodeId,
        lm: LandmarkId,
        uploaded: bool,
    },
    /// A stranded packet was re-queued for retry after a station recovered.
    RetryQueued {
        at: SimTime,
        lm: LandmarkId,
        pkt: PacketId,
    },
    /// Periodic routing-table health sample for one landmark.
    RouteCoverage {
        at: SimTime,
        lm: LandmarkId,
        coverage: f64,
        revision: u64,
    },
}

/// Every kind tag, sorted — `kind_index` is the position here, so a flat
/// `[u64; KIND_COUNT]` counter array iterated in index order reads back
/// in exactly the order a `BTreeMap<&str, u64>` keyed by tag would.
pub const KIND_TAGS: [&str; 17] = [
    "bandwidth_updated",
    "contact_close",
    "contact_open",
    "mis_transit",
    "node_failed",
    "node_recovered",
    "packet_delivered",
    "packet_expired",
    "packet_forwarded",
    "packet_generated",
    "packet_lost",
    "retry_queued",
    "route_coverage",
    "station_down",
    "station_up",
    "table_exchanged",
    "unit_boundary",
];

/// Number of distinct event kinds.
pub const KIND_COUNT: usize = KIND_TAGS.len();

impl SimEvent {
    /// Timestamp the event occurred at.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::ContactOpen { at, .. }
            | SimEvent::ContactClose { at, .. }
            | SimEvent::UnitBoundary { at, .. }
            | SimEvent::PacketGenerated { at, .. }
            | SimEvent::PacketForwarded { at, .. }
            | SimEvent::PacketDelivered { at, .. }
            | SimEvent::PacketExpired { at, .. }
            | SimEvent::PacketLost { at, .. }
            | SimEvent::StationDown { at, .. }
            | SimEvent::StationUp { at, .. }
            | SimEvent::NodeFailed { at, .. }
            | SimEvent::NodeRecovered { at, .. }
            | SimEvent::TableExchanged { at, .. }
            | SimEvent::BandwidthUpdated { at, .. }
            | SimEvent::MisTransit { at, .. }
            | SimEvent::RetryQueued { at, .. }
            | SimEvent::RouteCoverage { at, .. } => at,
        }
    }

    /// Stable machine-readable kind tag (used for event-count registries).
    pub fn kind(&self) -> &'static str {
        KIND_TAGS[self.kind_index()]
    }

    /// This event's position in [`KIND_TAGS`] — a dense index for flat
    /// per-kind counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            SimEvent::BandwidthUpdated { .. } => 0,
            SimEvent::ContactClose { .. } => 1,
            SimEvent::ContactOpen { .. } => 2,
            SimEvent::MisTransit { .. } => 3,
            SimEvent::NodeFailed { .. } => 4,
            SimEvent::NodeRecovered { .. } => 5,
            SimEvent::PacketDelivered { .. } => 6,
            SimEvent::PacketExpired { .. } => 7,
            SimEvent::PacketForwarded { .. } => 8,
            SimEvent::PacketGenerated { .. } => 9,
            SimEvent::PacketLost { .. } => 10,
            SimEvent::RetryQueued { .. } => 11,
            SimEvent::RouteCoverage { .. } => 12,
            SimEvent::StationDown { .. } => 13,
            SimEvent::StationUp { .. } => 14,
            SimEvent::TableExchanged { .. } => 15,
            SimEvent::UnitBoundary { .. } => 16,
        }
    }
}

impl fmt::Display for SimEvent {
    /// One compact line per event: `@<secs> <kind> <fields>`.
    ///
    /// Floats render via `{:?}` (shortest round-trip form), which is
    /// byte-stable for identical bit patterns across processes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.at().secs();
        match self {
            SimEvent::ContactOpen { node, lm, .. } => {
                write!(f, "@{t} contact_open {node} {lm}")
            }
            SimEvent::ContactClose { node, lm, .. } => {
                write!(f, "@{t} contact_close {node} {lm}")
            }
            SimEvent::UnitBoundary { unit, .. } => write!(f, "@{t} unit_boundary u{unit}"),
            SimEvent::PacketGenerated {
                pkt,
                src,
                dst,
                start,
                ..
            } => match start {
                Some(place) => write!(f, "@{t} packet_generated {pkt} {src}->{dst} at {place}"),
                None => write!(f, "@{t} packet_generated {pkt} {src}->{dst} stillborn"),
            },
            SimEvent::PacketForwarded { pkt, from, to, .. } => {
                write!(f, "@{t} packet_forwarded {pkt} {from}->{to}")
            }
            SimEvent::PacketDelivered {
                pkt,
                lm,
                delay,
                hops,
                from,
                ..
            } => write!(
                f,
                "@{t} packet_delivered {pkt} at {lm} delay={}s hops={hops} from {from}",
                delay.0
            ),
            SimEvent::PacketExpired { pkt, from, .. } => {
                write!(f, "@{t} packet_expired {pkt} at {from}")
            }
            SimEvent::PacketLost {
                pkt, from, kind, ..
            } => match from {
                Some(place) => write!(f, "@{t} packet_lost {pkt} at {place} kind={kind}"),
                None => write!(f, "@{t} packet_lost {pkt} stillborn kind={kind}"),
            },
            SimEvent::StationDown { lm, .. } => write!(f, "@{t} station_down {lm}"),
            SimEvent::StationUp { lm, .. } => write!(f, "@{t} station_up {lm}"),
            SimEvent::NodeFailed {
                node, lost_packets, ..
            } => {
                write!(f, "@{t} node_failed {node} lost={lost_packets}")
            }
            SimEvent::NodeRecovered { node, .. } => write!(f, "@{t} node_recovered {node}"),
            SimEvent::TableExchanged {
                from,
                to,
                entries,
                accepted,
                ..
            } => write!(
                f,
                "@{t} table_exchanged {from}->{to} entries={entries} accepted={accepted}"
            ),
            SimEvent::BandwidthUpdated {
                from, to, value, ..
            } => {
                write!(f, "@{t} bandwidth_updated {from}->{to} value={value:?}")
            }
            SimEvent::MisTransit {
                pkt,
                node,
                lm,
                uploaded,
                ..
            } => {
                write!(
                    f,
                    "@{t} mis_transit {pkt} {node} at {lm} uploaded={uploaded}"
                )
            }
            SimEvent::RetryQueued { lm, pkt, .. } => write!(f, "@{t} retry_queued {pkt} at {lm}"),
            SimEvent::RouteCoverage {
                lm,
                coverage,
                revision,
                ..
            } => {
                write!(
                    f,
                    "@{t} route_coverage {lm} coverage={coverage:?} rev={revision}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        let ev = SimEvent::PacketDelivered {
            at: SimTime(3661),
            pkt: PacketId(7),
            lm: LandmarkId(2),
            delay: SimDuration(600),
            hops: 3,
            from: Place::Node(NodeId(4)),
        };
        assert_eq!(
            ev.to_string(),
            "@3661 packet_delivered p7 at l2 delay=600s hops=3 from n4"
        );
        assert_eq!(ev.kind(), "packet_delivered");
        assert_eq!(ev.at(), SimTime(3661));
    }

    #[test]
    fn stillborn_renders_without_place() {
        let ev = SimEvent::PacketLost {
            at: SimTime(0),
            pkt: PacketId(0),
            from: None,
            kind: LossKind::Outage,
        };
        assert_eq!(ev.to_string(), "@0 packet_lost p0 stillborn kind=outage");
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        use std::collections::BTreeSet;
        let evs = [
            SimEvent::ContactOpen {
                at: SimTime(0),
                node: NodeId(0),
                lm: LandmarkId(0),
            },
            SimEvent::ContactClose {
                at: SimTime(0),
                node: NodeId(0),
                lm: LandmarkId(0),
            },
            SimEvent::UnitBoundary {
                at: SimTime(0),
                unit: 0,
            },
            SimEvent::PacketGenerated {
                at: SimTime(0),
                pkt: PacketId(0),
                src: LandmarkId(0),
                dst: LandmarkId(1),
                start: Some(Place::Pending(LandmarkId(0))),
            },
            SimEvent::PacketForwarded {
                at: SimTime(0),
                pkt: PacketId(0),
                from: Place::Station(LandmarkId(0)),
                to: Place::Node(NodeId(0)),
            },
            SimEvent::PacketDelivered {
                at: SimTime(0),
                pkt: PacketId(0),
                lm: LandmarkId(0),
                delay: SimDuration(0),
                hops: 0,
                from: Place::Node(NodeId(0)),
            },
            SimEvent::PacketExpired {
                at: SimTime(0),
                pkt: PacketId(0),
                from: Place::Pending(LandmarkId(0)),
            },
            SimEvent::PacketLost {
                at: SimTime(0),
                pkt: PacketId(0),
                from: None,
                kind: LossKind::Churn,
            },
            SimEvent::StationDown {
                at: SimTime(0),
                lm: LandmarkId(0),
            },
            SimEvent::StationUp {
                at: SimTime(0),
                lm: LandmarkId(0),
            },
            SimEvent::NodeFailed {
                at: SimTime(0),
                node: NodeId(0),
                lost_packets: 0,
            },
            SimEvent::NodeRecovered {
                at: SimTime(0),
                node: NodeId(0),
            },
            SimEvent::TableExchanged {
                at: SimTime(0),
                from: LandmarkId(0),
                to: LandmarkId(1),
                entries: 0,
                accepted: false,
            },
            SimEvent::BandwidthUpdated {
                at: SimTime(0),
                from: LandmarkId(0),
                to: LandmarkId(1),
                value: 0.0,
            },
            SimEvent::MisTransit {
                at: SimTime(0),
                pkt: PacketId(0),
                node: NodeId(0),
                lm: LandmarkId(0),
                uploaded: false,
            },
            SimEvent::RetryQueued {
                at: SimTime(0),
                lm: LandmarkId(0),
                pkt: PacketId(0),
            },
            SimEvent::RouteCoverage {
                at: SimTime(0),
                lm: LandmarkId(0),
                coverage: 0.0,
                revision: 0,
            },
        ];
        let kinds: BTreeSet<&'static str> = evs.iter().map(SimEvent::kind).collect();
        assert_eq!(kinds.len(), evs.len());
        // Every kind index is covered and consistent with the tag table.
        let idxs: BTreeSet<usize> = evs.iter().map(SimEvent::kind_index).collect();
        assert_eq!(idxs.len(), KIND_COUNT);
        for ev in &evs {
            assert_eq!(KIND_TAGS[ev.kind_index()], ev.kind());
        }
    }

    #[test]
    fn kind_tags_are_sorted() {
        // Flat counters iterated in kind_index order must read back in the
        // lexicographic order the old BTreeMap registry exported.
        assert!(KIND_TAGS.windows(2).all(|w| w[0] < w[1]));
    }
}
