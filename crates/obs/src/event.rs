//! Structured simulation events for the flight recorder.
//!
//! Every event carries the simulation timestamp it occurred at (`SimTime`,
//! never wall-clock time), so a recorded stream is deterministic for a
//! fixed scenario and seed. The `Display` impl renders one compact,
//! byte-stable line per event — that rendering is what the cross-process
//! trace-stability test compares.

use std::fmt;

use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Where a packet currently sits, from the tracer's point of view.
///
/// Mirrors the simulator's live `PacketLoc` states; terminal states
/// (delivered/expired/lost) are events, not places.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Place {
    /// Generated at a landmark but not yet picked up by any carrier.
    Pending(LandmarkId),
    /// Carried by a mobile node.
    Node(NodeId),
    /// Buffered in a landmark station's queue.
    Station(LandmarkId),
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Pending(lm) => write!(f, "pending@{lm}"),
            Place::Node(n) => write!(f, "{n}"),
            Place::Station(lm) => write!(f, "station@{lm}"),
        }
    }
}

/// Why a packet was lost (mirrors the simulator's loss reasons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LossKind {
    /// Dropped because a station was down (record loss / stillborn).
    Outage,
    /// Dropped because its carrier node failed.
    Churn,
}

impl fmt::Display for LossKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LossKind::Outage => f.write_str("outage"),
            LossKind::Churn => f.write_str("churn"),
        }
    }
}

/// One structured observability record.
///
/// Variants cover the full packet lifecycle, contact and fault
/// transitions, and the router-internal state changes the paper's
/// evaluation cares about (table exchanges, EWMA bandwidth folds,
/// mis-transit decisions, retry queueing, route coverage).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// A node arrived at a landmark station (contact opened).
    ContactOpen {
        at: SimTime,
        node: NodeId,
        lm: LandmarkId,
    },
    /// A node departed a landmark station (contact closed).
    ContactClose {
        at: SimTime,
        node: NodeId,
        lm: LandmarkId,
    },
    /// A time-unit boundary (Eq. 4 bandwidth fold happens here).
    UnitBoundary { at: SimTime, unit: u64 },
    /// A packet entered the simulation. `start` is `None` for stillborn
    /// packets generated at a station that was down.
    PacketGenerated {
        at: SimTime,
        pkt: PacketId,
        src: LandmarkId,
        dst: LandmarkId,
        start: Option<Place>,
    },
    /// A packet moved between a node and a station (either direction).
    PacketForwarded {
        at: SimTime,
        pkt: PacketId,
        from: Place,
        to: Place,
    },
    /// A packet reached its destination landmark.
    PacketDelivered {
        at: SimTime,
        pkt: PacketId,
        lm: LandmarkId,
        delay: SimDuration,
        hops: u32,
        from: Place,
    },
    /// A packet's TTL ran out.
    PacketExpired {
        at: SimTime,
        pkt: PacketId,
        from: Place,
    },
    /// A packet was destroyed by a fault. `from` is `None` for stillborn
    /// packets that never occupied a place.
    PacketLost {
        at: SimTime,
        pkt: PacketId,
        from: Option<Place>,
        kind: LossKind,
    },
    /// A landmark station went down (fault injection).
    StationDown { at: SimTime, lm: LandmarkId },
    /// A landmark station recovered.
    StationUp { at: SimTime, lm: LandmarkId },
    /// A node failed, destroying the packets it carried.
    NodeFailed {
        at: SimTime,
        node: NodeId,
        lost_packets: u64,
    },
    /// A failed node rejoined the simulation.
    NodeRecovered { at: SimTime, node: NodeId },
    /// A carried routing table from `from` was offered to `to`.
    TableExchanged {
        at: SimTime,
        from: LandmarkId,
        to: LandmarkId,
        entries: usize,
        accepted: bool,
    },
    /// End-of-unit EWMA fold produced a new smoothed bandwidth B(from→to).
    BandwidthUpdated {
        at: SimTime,
        from: LandmarkId,
        to: LandmarkId,
        value: f64,
    },
    /// A carrier holding a packet transited to a landmark that was not the
    /// predicted next hop (§IV-D). `uploaded` records the router's
    /// keep-vs-forward decision.
    MisTransit {
        at: SimTime,
        pkt: PacketId,
        node: NodeId,
        lm: LandmarkId,
        uploaded: bool,
    },
    /// A stranded packet was re-queued for retry after a station recovered.
    RetryQueued {
        at: SimTime,
        lm: LandmarkId,
        pkt: PacketId,
    },
    /// Periodic route-cache health sample for one landmark: cumulative
    /// forwarding decisions served from the memoized next-hop cell
    /// (DESIGN.md §14).
    RouteCacheHit {
        at: SimTime,
        lm: LandmarkId,
        count: u64,
    },
    /// Counterpart of [`SimEvent::RouteCacheHit`]: cumulative decisions
    /// that had to re-evaluate the divert/fallback logic.
    RouteCacheMiss {
        at: SimTime,
        lm: LandmarkId,
        count: u64,
    },
    /// Periodic routing-table health sample for one landmark.
    RouteCoverage {
        at: SimTime,
        lm: LandmarkId,
        coverage: f64,
        revision: u64,
    },
    /// A crash-consistent checkpoint of the full run state was written
    /// at a unit boundary (DESIGN.md §11). `bytes` is the state payload
    /// size, excluding the recorder's own section.
    CheckpointWritten { at: SimTime, unit: u64, bytes: u64 },
    /// The run was restored from a checkpoint at a unit boundary.
    /// `bytes` is the total snapshot size that was decoded.
    Restored { at: SimTime, unit: u64, bytes: u64 },
}

/// Every kind tag, sorted — `kind_index` is the position here, so a flat
/// `[u64; KIND_COUNT]` counter array iterated in index order reads back
/// in exactly the order a `BTreeMap<&str, u64>` keyed by tag would.
pub const KIND_TAGS: [&str; 21] = [
    "bandwidth_updated",
    "checkpoint_written",
    "contact_close",
    "contact_open",
    "mis_transit",
    "node_failed",
    "node_recovered",
    "packet_delivered",
    "packet_expired",
    "packet_forwarded",
    "packet_generated",
    "packet_lost",
    "restored",
    "retry_queued",
    "route_cache_hit",
    "route_cache_miss",
    "route_coverage",
    "station_down",
    "station_up",
    "table_exchanged",
    "unit_boundary",
];

/// Number of distinct event kinds.
pub const KIND_COUNT: usize = KIND_TAGS.len();

impl SimEvent {
    /// Timestamp the event occurred at.
    pub fn at(&self) -> SimTime {
        match *self {
            SimEvent::ContactOpen { at, .. }
            | SimEvent::ContactClose { at, .. }
            | SimEvent::UnitBoundary { at, .. }
            | SimEvent::PacketGenerated { at, .. }
            | SimEvent::PacketForwarded { at, .. }
            | SimEvent::PacketDelivered { at, .. }
            | SimEvent::PacketExpired { at, .. }
            | SimEvent::PacketLost { at, .. }
            | SimEvent::StationDown { at, .. }
            | SimEvent::StationUp { at, .. }
            | SimEvent::NodeFailed { at, .. }
            | SimEvent::NodeRecovered { at, .. }
            | SimEvent::TableExchanged { at, .. }
            | SimEvent::BandwidthUpdated { at, .. }
            | SimEvent::MisTransit { at, .. }
            | SimEvent::RetryQueued { at, .. }
            | SimEvent::RouteCacheHit { at, .. }
            | SimEvent::RouteCacheMiss { at, .. }
            | SimEvent::RouteCoverage { at, .. }
            | SimEvent::CheckpointWritten { at, .. }
            | SimEvent::Restored { at, .. } => at,
        }
    }

    /// Stable machine-readable kind tag (used for event-count registries).
    pub fn kind(&self) -> &'static str {
        KIND_TAGS[self.kind_index()]
    }

    /// This event's position in [`KIND_TAGS`] — a dense index for flat
    /// per-kind counter arrays.
    pub fn kind_index(&self) -> usize {
        match self {
            SimEvent::BandwidthUpdated { .. } => 0,
            SimEvent::CheckpointWritten { .. } => 1,
            SimEvent::ContactClose { .. } => 2,
            SimEvent::ContactOpen { .. } => 3,
            SimEvent::MisTransit { .. } => 4,
            SimEvent::NodeFailed { .. } => 5,
            SimEvent::NodeRecovered { .. } => 6,
            SimEvent::PacketDelivered { .. } => 7,
            SimEvent::PacketExpired { .. } => 8,
            SimEvent::PacketForwarded { .. } => 9,
            SimEvent::PacketGenerated { .. } => 10,
            SimEvent::PacketLost { .. } => 11,
            SimEvent::Restored { .. } => 12,
            SimEvent::RetryQueued { .. } => 13,
            SimEvent::RouteCacheHit { .. } => 14,
            SimEvent::RouteCacheMiss { .. } => 15,
            SimEvent::RouteCoverage { .. } => 16,
            SimEvent::StationDown { .. } => 17,
            SimEvent::StationUp { .. } => 18,
            SimEvent::TableExchanged { .. } => 19,
            SimEvent::UnitBoundary { .. } => 20,
        }
    }

    /// Binary encoding for checkpoints (DESIGN.md §11): one tag byte
    /// (the kind index) followed by the variant's fields in declaration
    /// order. Byte-deterministic; floats travel as raw bits.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u8(self.kind_index() as u8);
        w.put_u64(self.at().secs());
        match *self {
            SimEvent::ContactOpen { node, lm, .. } | SimEvent::ContactClose { node, lm, .. } => {
                w.put_u32(node.0);
                w.put_u16(lm.0);
            }
            SimEvent::UnitBoundary { unit, .. } => w.put_u64(unit),
            SimEvent::PacketGenerated {
                pkt,
                src,
                dst,
                start,
                ..
            } => {
                w.put_u32(pkt.0);
                w.put_u16(src.0);
                w.put_u16(dst.0);
                encode_opt_place(w, start);
            }
            SimEvent::PacketForwarded { pkt, from, to, .. } => {
                w.put_u32(pkt.0);
                encode_place(w, from);
                encode_place(w, to);
            }
            SimEvent::PacketDelivered {
                pkt,
                lm,
                delay,
                hops,
                from,
                ..
            } => {
                w.put_u32(pkt.0);
                w.put_u16(lm.0);
                w.put_u64(delay.0);
                w.put_u32(hops);
                encode_place(w, from);
            }
            SimEvent::PacketExpired { pkt, from, .. } => {
                w.put_u32(pkt.0);
                encode_place(w, from);
            }
            SimEvent::PacketLost {
                pkt, from, kind, ..
            } => {
                w.put_u32(pkt.0);
                encode_opt_place(w, from);
                w.put_u8(match kind {
                    LossKind::Outage => 0,
                    LossKind::Churn => 1,
                });
            }
            SimEvent::StationDown { lm, .. } | SimEvent::StationUp { lm, .. } => w.put_u16(lm.0),
            SimEvent::NodeFailed {
                node, lost_packets, ..
            } => {
                w.put_u32(node.0);
                w.put_u64(lost_packets);
            }
            SimEvent::NodeRecovered { node, .. } => w.put_u32(node.0),
            SimEvent::TableExchanged {
                from,
                to,
                entries,
                accepted,
                ..
            } => {
                w.put_u16(from.0);
                w.put_u16(to.0);
                w.put_usize(entries);
                w.put_bool(accepted);
            }
            SimEvent::BandwidthUpdated {
                from, to, value, ..
            } => {
                w.put_u16(from.0);
                w.put_u16(to.0);
                w.put_f64(value);
            }
            SimEvent::MisTransit {
                pkt,
                node,
                lm,
                uploaded,
                ..
            } => {
                w.put_u32(pkt.0);
                w.put_u32(node.0);
                w.put_u16(lm.0);
                w.put_bool(uploaded);
            }
            SimEvent::RetryQueued { lm, pkt, .. } => {
                w.put_u16(lm.0);
                w.put_u32(pkt.0);
            }
            SimEvent::RouteCacheHit { lm, count, .. }
            | SimEvent::RouteCacheMiss { lm, count, .. } => {
                w.put_u16(lm.0);
                w.put_u64(count);
            }
            SimEvent::RouteCoverage {
                lm,
                coverage,
                revision,
                ..
            } => {
                w.put_u16(lm.0);
                w.put_f64(coverage);
                w.put_u64(revision);
            }
            SimEvent::CheckpointWritten { unit, bytes, .. }
            | SimEvent::Restored { unit, bytes, .. } => {
                w.put_u64(unit);
                w.put_u64(bytes);
            }
        }
    }

    /// Inverse of [`SimEvent::encode`]; rejects unknown tag bytes with a
    /// typed error.
    pub fn decode(r: &mut Reader<'_>) -> Result<SimEvent, SnapshotError> {
        const CTX: &str = "SimEvent";
        let tag = r.u8(CTX)?;
        let at = SimTime(r.u64(CTX)?);
        Ok(match tag {
            0 => SimEvent::BandwidthUpdated {
                at,
                from: LandmarkId(r.u16(CTX)?),
                to: LandmarkId(r.u16(CTX)?),
                value: r.f64(CTX)?,
            },
            1 => SimEvent::CheckpointWritten {
                at,
                unit: r.u64(CTX)?,
                bytes: r.u64(CTX)?,
            },
            2 => SimEvent::ContactClose {
                at,
                node: NodeId(r.u32(CTX)?),
                lm: LandmarkId(r.u16(CTX)?),
            },
            3 => SimEvent::ContactOpen {
                at,
                node: NodeId(r.u32(CTX)?),
                lm: LandmarkId(r.u16(CTX)?),
            },
            4 => SimEvent::MisTransit {
                at,
                pkt: PacketId(r.u32(CTX)?),
                node: NodeId(r.u32(CTX)?),
                lm: LandmarkId(r.u16(CTX)?),
                uploaded: r.bool(CTX)?,
            },
            5 => SimEvent::NodeFailed {
                at,
                node: NodeId(r.u32(CTX)?),
                lost_packets: r.u64(CTX)?,
            },
            6 => SimEvent::NodeRecovered {
                at,
                node: NodeId(r.u32(CTX)?),
            },
            7 => SimEvent::PacketDelivered {
                at,
                pkt: PacketId(r.u32(CTX)?),
                lm: LandmarkId(r.u16(CTX)?),
                delay: SimDuration(r.u64(CTX)?),
                hops: r.u32(CTX)?,
                from: decode_place(r)?,
            },
            8 => SimEvent::PacketExpired {
                at,
                pkt: PacketId(r.u32(CTX)?),
                from: decode_place(r)?,
            },
            9 => SimEvent::PacketForwarded {
                at,
                pkt: PacketId(r.u32(CTX)?),
                from: decode_place(r)?,
                to: decode_place(r)?,
            },
            10 => SimEvent::PacketGenerated {
                at,
                pkt: PacketId(r.u32(CTX)?),
                src: LandmarkId(r.u16(CTX)?),
                dst: LandmarkId(r.u16(CTX)?),
                start: decode_opt_place(r)?,
            },
            11 => SimEvent::PacketLost {
                at,
                pkt: PacketId(r.u32(CTX)?),
                from: decode_opt_place(r)?,
                kind: match r.u8(CTX)? {
                    0 => LossKind::Outage,
                    1 => LossKind::Churn,
                    k => {
                        return Err(SnapshotError::InvalidTag {
                            context: "LossKind",
                            tag: k as u64,
                        })
                    }
                },
            },
            12 => SimEvent::Restored {
                at,
                unit: r.u64(CTX)?,
                bytes: r.u64(CTX)?,
            },
            13 => SimEvent::RetryQueued {
                at,
                lm: LandmarkId(r.u16(CTX)?),
                pkt: PacketId(r.u32(CTX)?),
            },
            14 => SimEvent::RouteCacheHit {
                at,
                lm: LandmarkId(r.u16(CTX)?),
                count: r.u64(CTX)?,
            },
            15 => SimEvent::RouteCacheMiss {
                at,
                lm: LandmarkId(r.u16(CTX)?),
                count: r.u64(CTX)?,
            },
            16 => SimEvent::RouteCoverage {
                at,
                lm: LandmarkId(r.u16(CTX)?),
                coverage: r.f64(CTX)?,
                revision: r.u64(CTX)?,
            },
            17 => SimEvent::StationDown {
                at,
                lm: LandmarkId(r.u16(CTX)?),
            },
            18 => SimEvent::StationUp {
                at,
                lm: LandmarkId(r.u16(CTX)?),
            },
            19 => SimEvent::TableExchanged {
                at,
                from: LandmarkId(r.u16(CTX)?),
                to: LandmarkId(r.u16(CTX)?),
                entries: r.usize(CTX)?,
                accepted: r.bool(CTX)?,
            },
            20 => SimEvent::UnitBoundary {
                at,
                unit: r.u64(CTX)?,
            },
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: CTX,
                    tag: t as u64,
                })
            }
        })
    }
}

fn encode_place(w: &mut Writer, p: Place) {
    match p {
        Place::Pending(lm) => {
            w.put_u8(0);
            w.put_u16(lm.0);
        }
        Place::Node(n) => {
            w.put_u8(1);
            w.put_u32(n.0);
        }
        Place::Station(lm) => {
            w.put_u8(2);
            w.put_u16(lm.0);
        }
    }
}

fn encode_opt_place(w: &mut Writer, p: Option<Place>) {
    match p {
        None => w.put_u8(255),
        Some(p) => encode_place(w, p),
    }
}

fn decode_place(r: &mut Reader<'_>) -> Result<Place, SnapshotError> {
    const CTX: &str = "Place";
    match r.u8(CTX)? {
        0 => Ok(Place::Pending(LandmarkId(r.u16(CTX)?))),
        1 => Ok(Place::Node(NodeId(r.u32(CTX)?))),
        2 => Ok(Place::Station(LandmarkId(r.u16(CTX)?))),
        t => Err(SnapshotError::InvalidTag {
            context: CTX,
            tag: t as u64,
        }),
    }
}

fn decode_opt_place(r: &mut Reader<'_>) -> Result<Option<Place>, SnapshotError> {
    const CTX: &str = "Option<Place>";
    match r.u8(CTX)? {
        255 => Ok(None),
        0 => Ok(Some(Place::Pending(LandmarkId(r.u16(CTX)?)))),
        1 => Ok(Some(Place::Node(NodeId(r.u32(CTX)?)))),
        2 => Ok(Some(Place::Station(LandmarkId(r.u16(CTX)?)))),
        t => Err(SnapshotError::InvalidTag {
            context: CTX,
            tag: t as u64,
        }),
    }
}

impl fmt::Display for SimEvent {
    /// One compact line per event: `@<secs> <kind> <fields>`.
    ///
    /// Floats render via `{:?}` (shortest round-trip form), which is
    /// byte-stable for identical bit patterns across processes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.at().secs();
        match self {
            SimEvent::ContactOpen { node, lm, .. } => {
                write!(f, "@{t} contact_open {node} {lm}")
            }
            SimEvent::ContactClose { node, lm, .. } => {
                write!(f, "@{t} contact_close {node} {lm}")
            }
            SimEvent::UnitBoundary { unit, .. } => write!(f, "@{t} unit_boundary u{unit}"),
            SimEvent::PacketGenerated {
                pkt,
                src,
                dst,
                start,
                ..
            } => match start {
                Some(place) => write!(f, "@{t} packet_generated {pkt} {src}->{dst} at {place}"),
                None => write!(f, "@{t} packet_generated {pkt} {src}->{dst} stillborn"),
            },
            SimEvent::PacketForwarded { pkt, from, to, .. } => {
                write!(f, "@{t} packet_forwarded {pkt} {from}->{to}")
            }
            SimEvent::PacketDelivered {
                pkt,
                lm,
                delay,
                hops,
                from,
                ..
            } => write!(
                f,
                "@{t} packet_delivered {pkt} at {lm} delay={}s hops={hops} from {from}",
                delay.0
            ),
            SimEvent::PacketExpired { pkt, from, .. } => {
                write!(f, "@{t} packet_expired {pkt} at {from}")
            }
            SimEvent::PacketLost {
                pkt, from, kind, ..
            } => match from {
                Some(place) => write!(f, "@{t} packet_lost {pkt} at {place} kind={kind}"),
                None => write!(f, "@{t} packet_lost {pkt} stillborn kind={kind}"),
            },
            SimEvent::StationDown { lm, .. } => write!(f, "@{t} station_down {lm}"),
            SimEvent::StationUp { lm, .. } => write!(f, "@{t} station_up {lm}"),
            SimEvent::NodeFailed {
                node, lost_packets, ..
            } => {
                write!(f, "@{t} node_failed {node} lost={lost_packets}")
            }
            SimEvent::NodeRecovered { node, .. } => write!(f, "@{t} node_recovered {node}"),
            SimEvent::TableExchanged {
                from,
                to,
                entries,
                accepted,
                ..
            } => write!(
                f,
                "@{t} table_exchanged {from}->{to} entries={entries} accepted={accepted}"
            ),
            SimEvent::BandwidthUpdated {
                from, to, value, ..
            } => {
                write!(f, "@{t} bandwidth_updated {from}->{to} value={value:?}")
            }
            SimEvent::MisTransit {
                pkt,
                node,
                lm,
                uploaded,
                ..
            } => {
                write!(
                    f,
                    "@{t} mis_transit {pkt} {node} at {lm} uploaded={uploaded}"
                )
            }
            SimEvent::RetryQueued { lm, pkt, .. } => write!(f, "@{t} retry_queued {pkt} at {lm}"),
            SimEvent::RouteCacheHit { lm, count, .. } => {
                write!(f, "@{t} route_cache_hit {lm} count={count}")
            }
            SimEvent::RouteCacheMiss { lm, count, .. } => {
                write!(f, "@{t} route_cache_miss {lm} count={count}")
            }
            SimEvent::RouteCoverage {
                lm,
                coverage,
                revision,
                ..
            } => {
                write!(
                    f,
                    "@{t} route_coverage {lm} coverage={coverage:?} rev={revision}"
                )
            }
            SimEvent::CheckpointWritten { unit, bytes, .. } => {
                write!(f, "@{t} checkpoint_written u{unit} bytes={bytes}")
            }
            SimEvent::Restored { unit, bytes, .. } => {
                write!(f, "@{t} restored u{unit} bytes={bytes}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        let ev = SimEvent::PacketDelivered {
            at: SimTime(3661),
            pkt: PacketId(7),
            lm: LandmarkId(2),
            delay: SimDuration(600),
            hops: 3,
            from: Place::Node(NodeId(4)),
        };
        assert_eq!(
            ev.to_string(),
            "@3661 packet_delivered p7 at l2 delay=600s hops=3 from n4"
        );
        assert_eq!(ev.kind(), "packet_delivered");
        assert_eq!(ev.at(), SimTime(3661));
    }

    #[test]
    fn stillborn_renders_without_place() {
        let ev = SimEvent::PacketLost {
            at: SimTime(0),
            pkt: PacketId(0),
            from: None,
            kind: LossKind::Outage,
        };
        assert_eq!(ev.to_string(), "@0 packet_lost p0 stillborn kind=outage");
    }

    #[test]
    fn every_variant_has_a_distinct_kind() {
        use std::collections::BTreeSet;
        let evs = [
            SimEvent::ContactOpen {
                at: SimTime(0),
                node: NodeId(0),
                lm: LandmarkId(0),
            },
            SimEvent::ContactClose {
                at: SimTime(0),
                node: NodeId(0),
                lm: LandmarkId(0),
            },
            SimEvent::UnitBoundary {
                at: SimTime(0),
                unit: 0,
            },
            SimEvent::PacketGenerated {
                at: SimTime(0),
                pkt: PacketId(0),
                src: LandmarkId(0),
                dst: LandmarkId(1),
                start: Some(Place::Pending(LandmarkId(0))),
            },
            SimEvent::PacketForwarded {
                at: SimTime(0),
                pkt: PacketId(0),
                from: Place::Station(LandmarkId(0)),
                to: Place::Node(NodeId(0)),
            },
            SimEvent::PacketDelivered {
                at: SimTime(0),
                pkt: PacketId(0),
                lm: LandmarkId(0),
                delay: SimDuration(0),
                hops: 0,
                from: Place::Node(NodeId(0)),
            },
            SimEvent::PacketExpired {
                at: SimTime(0),
                pkt: PacketId(0),
                from: Place::Pending(LandmarkId(0)),
            },
            SimEvent::PacketLost {
                at: SimTime(0),
                pkt: PacketId(0),
                from: None,
                kind: LossKind::Churn,
            },
            SimEvent::StationDown {
                at: SimTime(0),
                lm: LandmarkId(0),
            },
            SimEvent::StationUp {
                at: SimTime(0),
                lm: LandmarkId(0),
            },
            SimEvent::NodeFailed {
                at: SimTime(0),
                node: NodeId(0),
                lost_packets: 0,
            },
            SimEvent::NodeRecovered {
                at: SimTime(0),
                node: NodeId(0),
            },
            SimEvent::TableExchanged {
                at: SimTime(0),
                from: LandmarkId(0),
                to: LandmarkId(1),
                entries: 0,
                accepted: false,
            },
            SimEvent::BandwidthUpdated {
                at: SimTime(0),
                from: LandmarkId(0),
                to: LandmarkId(1),
                value: 0.0,
            },
            SimEvent::MisTransit {
                at: SimTime(0),
                pkt: PacketId(0),
                node: NodeId(0),
                lm: LandmarkId(0),
                uploaded: false,
            },
            SimEvent::RetryQueued {
                at: SimTime(0),
                lm: LandmarkId(0),
                pkt: PacketId(0),
            },
            SimEvent::RouteCacheHit {
                at: SimTime(0),
                lm: LandmarkId(0),
                count: 0,
            },
            SimEvent::RouteCacheMiss {
                at: SimTime(0),
                lm: LandmarkId(0),
                count: 0,
            },
            SimEvent::RouteCoverage {
                at: SimTime(0),
                lm: LandmarkId(0),
                coverage: 0.0,
                revision: 0,
            },
            SimEvent::CheckpointWritten {
                at: SimTime(0),
                unit: 0,
                bytes: 0,
            },
            SimEvent::Restored {
                at: SimTime(0),
                unit: 0,
                bytes: 0,
            },
        ];
        let kinds: BTreeSet<&'static str> = evs.iter().map(SimEvent::kind).collect();
        assert_eq!(kinds.len(), evs.len());
        // Every kind index is covered and consistent with the tag table.
        let idxs: BTreeSet<usize> = evs.iter().map(SimEvent::kind_index).collect();
        assert_eq!(idxs.len(), KIND_COUNT);
        for ev in &evs {
            assert_eq!(KIND_TAGS[ev.kind_index()], ev.kind());
        }
    }

    #[test]
    fn kind_tags_are_sorted() {
        // Flat counters iterated in kind_index order must read back in the
        // lexicographic order the old BTreeMap registry exported.
        assert!(KIND_TAGS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn checkpoint_events_render_compactly() {
        let ev = SimEvent::CheckpointWritten {
            at: SimTime(259_200),
            unit: 1,
            bytes: 4096,
        };
        assert_eq!(ev.to_string(), "@259200 checkpoint_written u1 bytes=4096");
        let ev = SimEvent::Restored {
            at: SimTime(259_200),
            unit: 1,
            bytes: 5000,
        };
        assert_eq!(ev.to_string(), "@259200 restored u1 bytes=5000");
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let evs = [
            SimEvent::ContactOpen {
                at: SimTime(9),
                node: NodeId(3),
                lm: LandmarkId(1),
            },
            SimEvent::ContactClose {
                at: SimTime(10),
                node: NodeId(3),
                lm: LandmarkId(1),
            },
            SimEvent::UnitBoundary {
                at: SimTime(11),
                unit: 4,
            },
            SimEvent::PacketGenerated {
                at: SimTime(12),
                pkt: PacketId(5),
                src: LandmarkId(0),
                dst: LandmarkId(2),
                start: None,
            },
            SimEvent::PacketGenerated {
                at: SimTime(12),
                pkt: PacketId(6),
                src: LandmarkId(0),
                dst: LandmarkId(2),
                start: Some(Place::Pending(LandmarkId(0))),
            },
            SimEvent::PacketForwarded {
                at: SimTime(13),
                pkt: PacketId(5),
                from: Place::Station(LandmarkId(0)),
                to: Place::Node(NodeId(9)),
            },
            SimEvent::PacketDelivered {
                at: SimTime(14),
                pkt: PacketId(5),
                lm: LandmarkId(2),
                delay: SimDuration(600),
                hops: 3,
                from: Place::Node(NodeId(9)),
            },
            SimEvent::PacketExpired {
                at: SimTime(15),
                pkt: PacketId(6),
                from: Place::Pending(LandmarkId(0)),
            },
            SimEvent::PacketLost {
                at: SimTime(16),
                pkt: PacketId(7),
                from: None,
                kind: LossKind::Outage,
            },
            SimEvent::StationDown {
                at: SimTime(17),
                lm: LandmarkId(4),
            },
            SimEvent::StationUp {
                at: SimTime(18),
                lm: LandmarkId(4),
            },
            SimEvent::NodeFailed {
                at: SimTime(19),
                node: NodeId(2),
                lost_packets: 3,
            },
            SimEvent::NodeRecovered {
                at: SimTime(20),
                node: NodeId(2),
            },
            SimEvent::TableExchanged {
                at: SimTime(21),
                from: LandmarkId(0),
                to: LandmarkId(1),
                entries: 40,
                accepted: true,
            },
            SimEvent::BandwidthUpdated {
                at: SimTime(22),
                from: LandmarkId(0),
                to: LandmarkId(1),
                value: f64::NAN,
            },
            SimEvent::MisTransit {
                at: SimTime(23),
                pkt: PacketId(8),
                node: NodeId(1),
                lm: LandmarkId(3),
                uploaded: false,
            },
            SimEvent::RetryQueued {
                at: SimTime(24),
                lm: LandmarkId(2),
                pkt: PacketId(8),
            },
            SimEvent::RouteCacheHit {
                at: SimTime(24),
                lm: LandmarkId(2),
                count: 990,
            },
            SimEvent::RouteCacheMiss {
                at: SimTime(24),
                lm: LandmarkId(2),
                count: 10,
            },
            SimEvent::RouteCoverage {
                at: SimTime(25),
                lm: LandmarkId(1),
                coverage: 0.75,
                revision: 12,
            },
            SimEvent::CheckpointWritten {
                at: SimTime(26),
                unit: 2,
                bytes: 1234,
            },
            SimEvent::Restored {
                at: SimTime(27),
                unit: 2,
                bytes: 1250,
            },
        ];
        let mut w = Writer::new();
        for ev in &evs {
            ev.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for ev in &evs {
            let back = SimEvent::decode(&mut r).unwrap();
            // NaN != NaN under PartialEq, so compare the Display lines
            // (shortest-round-trip floats) plus the re-encoded bytes.
            assert_eq!(back.to_string(), ev.to_string());
            let mut w1 = Writer::new();
            let mut w2 = Writer::new();
            ev.encode(&mut w1);
            back.encode(&mut w2);
            assert_eq!(w1.into_bytes(), w2.into_bytes());
        }
        r.finish("events").unwrap();
    }

    #[test]
    fn codec_rejects_bad_tags() {
        let mut w = Writer::new();
        w.put_u8(200);
        w.put_u64(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            SimEvent::decode(&mut Reader::new(&bytes)),
            Err(SnapshotError::InvalidTag { .. })
        ));
    }
}
