//! # dtnflow-obs — deterministic simulation observability
//!
//! Event tracing, per-landmark counters, EWMA-bandwidth gauges, and
//! delay/hop histograms for the DTN-FLOW simulator, designed around two
//! hard rules (DESIGN.md §9):
//!
//! 1. **Zero overhead when disabled.** The simulator emits events through
//!    a closure that is only invoked while a [`TraceSink`] is attached;
//!    with tracing off, not even the event struct is built.
//! 2. **Never perturb outcomes.** Sinks observe; they cannot feed back
//!    into routing or the RNG. Experiment CSVs are byte-identical with
//!    tracing on and off (enforced by `csv_determinism`), and a recorded
//!    stream for a fixed seed is byte-stable across processes.
//!
//! Determinism contract: all timestamps are [`SimTime`] (no wall clock),
//! all keyed state is `BTreeMap`-ordered, and JSON/CSV exports render
//! identically for identical inputs.
//!
//! [`SimTime`]: dtnflow_core::time::SimTime

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffer;
pub mod event;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod sink;
pub mod snapshot;

pub use buffer::{EventBuffer, ShardBuffers};
pub use event::{LossKind, Place, SimEvent};
pub use metrics::{LandmarkCounters, ObsMetrics, Totals, DELAY_BUCKET_EDGES_SECS};
pub use sink::{NoopSink, Recorder, TraceSink, DEFAULT_RING_CAPACITY};
pub use snapshot::{bench_json, report_json, BenchEntry, LandmarkRow, Snapshot};
