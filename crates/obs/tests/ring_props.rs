//! Property tests for the flight-recorder ring buffer: the ring never
//! exceeds its bound, eviction accounting is exact, and the metric fold
//! sees every event regardless of ring churn.

use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::time::SimTime;
use dtnflow_obs::{Recorder, SimEvent, TraceSink};
use proptest::prelude::*;

/// A small assortment of event shapes; the ring treats them uniformly.
fn arb_event() -> impl Strategy<Value = SimEvent> {
    (0u64..100_000, 0u32..8, 0u16..8, any::<u8>()).prop_map(|(t, n, l, pick)| {
        let at = SimTime(t);
        match pick % 4 {
            0 => SimEvent::ContactOpen {
                at,
                node: NodeId(n),
                lm: LandmarkId(l),
            },
            1 => SimEvent::UnitBoundary { at, unit: t / 900 },
            2 => SimEvent::StationDown {
                at,
                lm: LandmarkId(l),
            },
            _ => SimEvent::RetryQueued {
                at,
                lm: LandmarkId(l),
                pkt: PacketId(n),
            },
        }
    })
}

proptest! {
    #[test]
    fn ring_never_exceeds_capacity(
        capacity in 1usize..64,
        events in proptest::collection::vec(arb_event(), 0..300),
    ) {
        let mut r = Recorder::new(capacity);
        for (i, ev) in events.iter().enumerate() {
            r.record(ev.clone());
            prop_assert!(r.len() <= capacity);
            prop_assert_eq!(r.recorded(), i as u64 + 1);
        }
        let n = events.len();
        prop_assert_eq!(r.len(), n.min(capacity));
        prop_assert_eq!(r.dropped(), n.saturating_sub(capacity) as u64);
        // The ring retains exactly the newest `capacity` events, in order.
        let kept: Vec<&SimEvent> = r.events().collect();
        let expect: Vec<&SimEvent> = events.iter().skip(n.saturating_sub(capacity)).collect();
        prop_assert_eq!(kept, expect);
    }

    #[test]
    fn metric_fold_counts_all_events_even_after_eviction(
        capacity in 1usize..8,
        events in proptest::collection::vec(arb_event(), 0..200),
    ) {
        let mut r = Recorder::new(capacity);
        for ev in &events {
            r.record(ev.clone());
        }
        let total: u64 = r.metrics().event_counts.values().sum();
        prop_assert_eq!(total, events.len() as u64);
        // Snapshot ring stats agree with the recorder.
        let snap = r.snapshot();
        prop_assert_eq!(snap.events_recorded, events.len() as u64);
        prop_assert_eq!(snap.events_dropped, r.dropped());
        prop_assert_eq!(
            snap.events_recorded - snap.events_dropped,
            r.len() as u64
        );
    }

    #[test]
    fn render_log_has_one_line_per_retained_event(
        capacity in 1usize..32,
        events in proptest::collection::vec(arb_event(), 0..120),
    ) {
        let mut r = Recorder::new(capacity);
        for ev in &events {
            r.record(ev.clone());
        }
        prop_assert_eq!(r.render_log().lines().count(), r.len());
    }
}
