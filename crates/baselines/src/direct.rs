//! Direct delivery: the no-relaying floor reference.
//!
//! Packets are picked up by the first node passing through their source
//! subarea and are never forwarded again; they are delivered only if that
//! carrier happens to visit the destination landmark within TTL. Not one
//! of the paper's baselines, but a useful lower bound in the benches: any
//! relaying scheme should beat it.

use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_sim::{Router, TransferError, World};

/// The direct-delivery router.
#[derive(Debug, Default)]
pub struct Direct;

impl Direct {
    pub fn new() -> Self {
        Direct
    }
}

impl Router for Direct {
    fn name(&self) -> &'static str {
        "Direct"
    }

    fn on_arrive(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        let pending: Vec<PacketId> = world.pending_at(lm).collect();
        for pkt in pending {
            match world.transfer_to_node(pkt, node) {
                Ok(()) | Err(TransferError::Expired) => {}
                Err(TransferError::NoSpace) => break,
                Err(_) => {}
            }
        }
    }

    fn on_packet_generated(&mut self, world: &mut World, pkt: PacketId) {
        // Hand it to anyone already in the subarea.
        let src = match world.packet(pkt).loc {
            dtnflow_core::packet::PacketLoc::PendingAtSource(l) => l,
            _ => return,
        };
        let first = world.nodes_at(src).iter().next();
        if let Some(n) = first {
            let _ = world.transfer_to_node(pkt, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::config::SimConfig;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::ids::NodeId;
    use dtnflow_core::time::{SimTime, DAY};
    use dtnflow_mobility::{Trace, Visit};
    use dtnflow_sim::run;

    #[test]
    fn delivers_only_what_the_first_carrier_covers() {
        // Node 0 shuttles l0 <-> l1; l2 exists but nobody goes there.
        let mut visits = Vec::new();
        for d in 0..6u64 {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base),
                SimTime(base + 10_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 20_000),
                SimTime(base + 30_000),
            ));
        }
        let trace = Trace::new(
            "shuttle3",
            1,
            3,
            (0..3).map(|i| Point::new(i as f64, 0.0)).collect(),
            visits,
        )
        .unwrap();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 6.0,
            ttl: DAY.mul(2),
            time_unit: DAY,
            warmup_fraction: 0.1,
            seed: 4,
            ..SimConfig::default()
        };
        let out = run(&trace, &cfg, &mut Direct::new());
        // Packets between l0 and l1 deliver; anything touching l2 cannot.
        assert!(out.metrics.delivered > 0);
        let l2 = LandmarkId(2);
        for p in &out.packets {
            if p.dst == l2 {
                assert!(
                    !matches!(p.loc, dtnflow_core::packet::PacketLoc::Delivered(_)),
                    "nothing can reach l2"
                );
            }
        }
    }
}
