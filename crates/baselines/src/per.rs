//! PER (Predict and Relay) adapted to landmark destinations (paper §II-C,
//! §V-A.1).
//!
//! "In PER, a node's past mobility and sojourn among different landmarks
//! are summarized to … predict a node's probability to visit a landmark
//! before a certain deadline." We model each node as a time-homogeneous
//! semi-Markov process: an order-1 transition matrix over landmarks plus
//! the node's mean time per hop (sojourn + travel). The utility of a node
//! for a packet is the first-passage probability of reaching the packet's
//! destination landmark within its remaining TTL.
//!
//! Because this probability changes every time the node moves, PER
//! re-ranks carriers constantly — which is exactly why the paper measures
//! it with the highest forwarding cost (§V-A.2).

use crate::common::UtilityModel;
use dtnflow_core::dense::DenseMap;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};

/// Cap on the number of DP steps (hops) expanded per query.
pub const MAX_STEPS: usize = 24;

/// Per-node semi-Markov mobility summary.
struct NodeModel {
    /// Transit counts `from -> (to -> count)`.
    transitions: DenseMap<u16, DenseMap<u16, u32>>,
    /// One past the largest landmark id seen by this node (bounds the flat
    /// DP distributions in [`NodeModel::compute_first_passage`]).
    lm_bound: usize,
    current: Option<LandmarkId>,
    last_arrival: Option<SimTime>,
    /// Sum and count of observed hop times (arrival to next arrival).
    hop_time_sum: u64,
    hop_count: u64,
    /// Memoized first-passage curves: dst -> cumulative hit probability
    /// after `s+1` hops. Cleared whenever the node moves.
    cache: DenseMap<u16, Vec<f64>>,
    /// Reusable DP distributions (never observable: cleared before use).
    scratch_dist: Vec<f64>,
    scratch_next: Vec<f64>,
}

impl NodeModel {
    fn new() -> Self {
        NodeModel {
            transitions: DenseMap::new(),
            lm_bound: 0,
            current: None,
            last_arrival: None,
            hop_time_sum: 0,
            hop_count: 0,
            cache: DenseMap::new(),
            scratch_dist: Vec::new(),
            scratch_next: Vec::new(),
        }
    }

    fn mean_hop_secs(&self) -> f64 {
        if self.hop_count == 0 {
            return f64::INFINITY;
        }
        self.hop_time_sum as f64 / self.hop_count as f64
    }

    /// First-passage cumulative probabilities: entry `s` is the
    /// probability of having visited `dst` within `s+1` hops from the
    /// current landmark.
    fn first_passage(&mut self, dst: LandmarkId) -> &[f64] {
        if !self.cache.contains_key(dst.0) {
            let curve = self.compute_first_passage(dst);
            self.cache.insert(dst.0, curve);
        }
        &self.cache[dst.0]
    }

    fn compute_first_passage(&mut self, dst: LandmarkId) -> Vec<f64> {
        let Some(at) = self.current else {
            return vec![0.0; MAX_STEPS];
        };
        // Flat distribution over landmark ids, dst absorbing. Mass is
        // accumulated in floating point, so iteration order is observable
        // in the scores: ascending-id scans reproduce exactly the ordered
        // maps this replaces (entries present in those maps always carried
        // positive mass, so skipping zero slots preserves the sparsity).
        let side = self.lm_bound.max(at.0 as usize + 1);
        let mut dist = std::mem::take(&mut self.scratch_dist);
        let mut next = std::mem::take(&mut self.scratch_next);
        dist.clear();
        dist.resize(side, 0.0);
        next.clear();
        next.resize(side, 0.0);
        dist[at.0 as usize] = 1.0;
        let mut absorbed = 0.0;
        let mut curve = Vec::with_capacity(MAX_STEPS);
        for _ in 0..MAX_STEPS {
            for slot in next.iter_mut() {
                *slot = 0.0;
            }
            for (from, mass) in dist.iter().copied().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                let Some(outs) = self.transitions.get(from as u16) else {
                    continue; // unknown outs: the walk stalls here
                };
                let total: u32 = outs.values().sum();
                if total == 0 {
                    continue;
                }
                for (to, &cnt) in outs.iter() {
                    let m = mass * cnt as f64 / total as f64;
                    if to == dst.0 {
                        absorbed += m;
                    } else {
                        next[to as usize] += m;
                    }
                }
            }
            std::mem::swap(&mut dist, &mut next);
            curve.push(absorbed);
        }
        self.scratch_dist = dist;
        self.scratch_next = next;
        curve
    }
}

/// The PER utility model.
pub struct Per {
    nodes: Vec<NodeModel>,
}

impl Per {
    pub fn new(num_nodes: usize, _num_landmarks: usize) -> Self {
        Per {
            nodes: (0..num_nodes).map(|_| NodeModel::new()).collect(),
        }
    }

    /// Probability that `node` visits `dst` within `deadline` (diagnostic
    /// accessor; the router goes through [`UtilityModel::score`]).
    pub fn hit_probability(&mut self, node: NodeId, dst: LandmarkId, deadline: SimDuration) -> f64 {
        let m = &mut self.nodes[node.index()];
        let mean_hop = m.mean_hop_secs();
        if !mean_hop.is_finite() || mean_hop <= 0.0 {
            return 0.0;
        }
        let steps = (deadline.secs() as f64 / mean_hop).floor() as usize;
        if steps == 0 {
            return 0.0;
        }
        let curve = m.first_passage(dst);
        curve[steps.min(MAX_STEPS) - 1]
    }
}

impl UtilityModel for Per {
    fn name(&self) -> &'static str {
        "PER"
    }

    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, now: SimTime) {
        let m = &mut self.nodes[node.index()];
        m.lm_bound = m.lm_bound.max(lm.0 as usize + 1);
        if let (Some(prev), Some(since)) = (m.current, m.last_arrival) {
            if prev != lm {
                *m.transitions.get_or_default(prev.0).get_or_default(lm.0) += 1;
                m.hop_time_sum += now.since(since).secs();
                m.hop_count += 1;
            }
        }
        if m.current != Some(lm) {
            m.cache.clear();
        }
        m.current = Some(lm);
        m.last_arrival = Some(now);
    }

    fn score(
        &mut self,
        node: NodeId,
        dst: LandmarkId,
        remaining: SimDuration,
        _now: SimTime,
    ) -> f64 {
        self.hit_probability(node, dst, remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::{DAY, HOUR};

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn feed_cycle(m: &mut Per, node: NodeId, cycle: &[u16], reps: usize, hop_secs: u64) {
        let mut t = 0;
        for _ in 0..reps {
            for &l in cycle {
                m.on_visit(node, lm(l), SimTime(t));
                t += hop_secs;
            }
        }
    }

    #[test]
    fn deterministic_cycle_hits_with_certainty_given_time() {
        let mut m = Per::new(1, 3);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 6, 3_600);
        // Currently at l2; within a day (24 hops of 1 h) it surely
        // revisits l0 and l1.
        assert!(m.hit_probability(NodeId(0), lm(0), DAY) > 0.99);
        assert!(m.hit_probability(NodeId(0), lm(1), DAY) > 0.99);
    }

    #[test]
    fn tight_deadline_lowers_probability() {
        let mut m = Per::new(1, 3);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 6, 3_600);
        // At l2, the next hop is l0, the one after l1: with only one
        // hop's worth of time, l1 is unreachable.
        let one_hop = HOUR.mul_f64(1.5);
        assert!(m.hit_probability(NodeId(0), lm(0), one_hop) > 0.99);
        assert!(m.hit_probability(NodeId(0), lm(1), one_hop) < 0.01);
    }

    #[test]
    fn probability_changes_when_node_moves() {
        let mut m = Per::new(1, 3);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 6, 3_600);
        let deadline = HOUR.mul_f64(1.5);
        let before = m.hit_probability(NodeId(0), lm(0), deadline);
        // Move to l0 on the usual cadence: now l1 is next, l0 behind.
        m.on_visit(NodeId(0), lm(0), SimTime(18 * 3_600));
        let after_l0 = m.hit_probability(NodeId(0), lm(1), deadline);
        let after_l0_back = m.hit_probability(NodeId(0), lm(0), deadline);
        assert!(before > 0.99);
        assert!(after_l0 > 0.99);
        assert!(after_l0_back < 0.5, "l0 is now behind: {after_l0_back}");
    }

    #[test]
    fn unknown_node_scores_zero() {
        let mut m = Per::new(1, 2);
        assert_eq!(m.hit_probability(NodeId(0), lm(1), DAY), 0.0);
        // One visit gives a current landmark but no hop statistics.
        m.on_visit(NodeId(0), lm(0), SimTime(0));
        assert_eq!(m.hit_probability(NodeId(0), lm(1), DAY), 0.0);
    }

    #[test]
    fn branching_walks_split_probability() {
        let mut m = Per::new(1, 3);
        // From l0 the node goes to l1 and l2 equally often; one hop of
        // time gives ~0.5 for either.
        let seq = [0u16, 1, 0, 2, 0, 1, 0, 2];
        let mut t = 0;
        for &l in &seq {
            m.on_visit(NodeId(0), lm(l), SimTime(t));
            t += 3_600;
        }
        // Currently at l2 -> returns to l0 w.p. 1; from l0 splits.
        let p1 = m.hit_probability(NodeId(0), lm(1), HOUR.mul(2));
        assert!((p1 - 0.5).abs() < 0.1, "p1 {p1}");
    }
}
