//! Baseline DTN routers (paper §V-A.1).
//!
//! The paper compares DTN-FLOW against five state-of-the-art algorithms,
//! each "adapted to fit landmark-to-landmark routing": packets are born in
//! a subarea, carried and exchanged by mobile nodes only (no landmark
//! stations), and delivered the moment a carrier reaches the destination
//! landmark. All five share the carry-and-compare structure — when two
//! nodes meet, a packet moves to the neighbour whose *utility* for the
//! packet's destination landmark is higher — and differ only in the
//! utility:
//!
//! * [`prophet::Prophet`] — aged encounter probability (probabilistic);
//! * [`simbet::SimBet`] — centrality + similarity (social);
//! * [`pgr::Pgr`] — predicted future route membership (location);
//! * [`geocomm::GeoComm`] — per-unit-time contact probability (location);
//! * [`per::Per`] — semi-Markov probability of reaching the destination
//!   before the packet's deadline (location);
//! * [`direct::Direct`] — no relaying at all (a floor reference).
//!
//! The shared machinery lives in [`common::UtilityRouter`].

#![forbid(unsafe_code)]

pub mod common;
pub mod direct;
pub mod geocomm;
pub mod per;
pub mod pgr;
pub mod prophet;
pub mod simbet;

pub use common::{UtilityModel, UtilityRouter};
pub use direct::Direct;
pub use geocomm::GeoComm;
pub use per::Per;
pub use pgr::Pgr;
pub use prophet::Prophet;
pub use simbet::SimBet;

use dtnflow_sim::Router;

/// Every baseline, boxed, for experiment sweeps. DTN-FLOW itself lives in
/// the `dtnflow-router` crate.
pub fn all_baselines(num_nodes: usize, num_landmarks: usize) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(UtilityRouter::new(SimBet::new(num_nodes, num_landmarks))),
        Box::new(UtilityRouter::new(Prophet::new(num_nodes, num_landmarks))),
        Box::new(UtilityRouter::new(Pgr::new(num_nodes, num_landmarks))),
        Box::new(UtilityRouter::new(GeoComm::new(num_nodes, num_landmarks))),
        Box::new(UtilityRouter::new(Per::new(num_nodes, num_landmarks))),
    ]
}
