//! PGR (geographical routing for DTN encounter networks) adapted to
//! landmark destinations (paper §II-C, §V-A.1).
//!
//! "PGR uses observed node mobility routes, i.e., a sequence of locations,
//! to check whether the destination landmark is on a node's route." We
//! predict a node's future route by following its most likely order-1
//! Markov transitions for `HORIZON` hops from its current landmark; the
//! utility of a node for a destination is higher the earlier the
//! destination appears on that predicted route. Predicting a whole
//! multi-hop route compounds the single-step error, which is why the paper
//! finds PGR's accuracy — and success rate — lowest (§V-A.2).

use crate::common::UtilityModel;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_predictor::MarkovPredictor;

/// How many hops ahead a route is predicted.
pub const HORIZON: usize = 5;

/// The PGR utility model.
pub struct Pgr {
    predictors: Vec<MarkovPredictor>,
    current: Vec<Option<LandmarkId>>,
    /// Cached predicted route per node, invalidated on movement.
    route_cache: Vec<Option<Vec<LandmarkId>>>,
}

impl Pgr {
    pub fn new(num_nodes: usize, _num_landmarks: usize) -> Self {
        Pgr {
            predictors: (0..num_nodes).map(|_| MarkovPredictor::new(1)).collect(),
            current: vec![None; num_nodes],
            route_cache: vec![None; num_nodes],
        }
    }

    /// The node's predicted route: up to `HORIZON` most-likely next
    /// landmarks starting from its current one.
    pub fn predicted_route(&mut self, node: NodeId) -> Vec<LandmarkId> {
        if let Some(route) = &self.route_cache[node.index()] {
            return route.clone();
        }
        let mut route = Vec::with_capacity(HORIZON);
        let predictor = &self.predictors[node.index()];
        let Some(mut at) = self.current[node.index()] else {
            return route;
        };
        for _ in 0..HORIZON {
            match predictor.predict_from(&[at]) {
                Some((next, _)) => {
                    route.push(next);
                    at = next;
                }
                None => break,
            }
        }
        self.route_cache[node.index()] = Some(route.clone());
        route
    }
}

impl UtilityModel for Pgr {
    fn name(&self) -> &'static str {
        "PGR"
    }

    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, _now: SimTime) {
        self.predictors[node.index()].observe(lm);
        self.current[node.index()] = Some(lm);
        self.route_cache[node.index()] = None;
    }

    fn score(&mut self, node: NodeId, dst: LandmarkId, _: SimDuration, _: SimTime) -> f64 {
        let route = self.predicted_route(node);
        match route.iter().position(|&l| l == dst) {
            Some(i) => 1.0 / (i + 1) as f64,
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::DAY;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime(s)
    }

    fn feed_cycle(m: &mut Pgr, node: NodeId, cycle: &[u16], reps: usize) {
        let mut clock = 0;
        for _ in 0..reps {
            for &l in cycle {
                m.on_visit(node, lm(l), t(clock));
                clock += 100;
            }
        }
    }

    #[test]
    fn route_follows_learned_cycle() {
        let mut m = Pgr::new(1, 4);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 5);
        // Currently at l2 (cycle ends 0,1,2): next 0, then 1, 2, ...
        let route = m.predicted_route(NodeId(0));
        assert_eq!(route.len(), HORIZON);
        assert_eq!(route[0], lm(0));
        assert_eq!(route[1], lm(1));
        assert_eq!(route[2], lm(2));
    }

    #[test]
    fn earlier_on_route_scores_higher() {
        let mut m = Pgr::new(1, 4);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 5);
        let s0 = m.score(NodeId(0), lm(0), DAY, t(0));
        let s1 = m.score(NodeId(0), lm(1), DAY, t(0));
        let s3 = m.score(NodeId(0), lm(3), DAY, t(0));
        assert!(s0 > s1, "{s0} vs {s1}");
        assert_eq!(s3, 0.0);
    }

    #[test]
    fn unknown_node_scores_zero() {
        let mut m = Pgr::new(1, 2);
        assert_eq!(m.score(NodeId(0), lm(1), DAY, t(0)), 0.0);
        assert!(m.predicted_route(NodeId(0)).is_empty());
    }

    #[test]
    fn cache_invalidated_on_movement() {
        let mut m = Pgr::new(1, 4);
        feed_cycle(&mut m, NodeId(0), &[0, 1, 2], 5);
        let before = m.predicted_route(NodeId(0));
        m.on_visit(NodeId(0), lm(0), t(99_999));
        let after = m.predicted_route(NodeId(0));
        assert_ne!(before, after);
        assert_eq!(after[0], lm(1));
    }
}
