//! Shared machinery for the carry-and-compare baselines.
//!
//! A [`UtilityRouter`] wraps a [`UtilityModel`] and implements the routing
//! pattern shared by all five baselines (Fig. 1a):
//!
//! * a packet born in a subarea waits until the first node with free
//!   memory arrives (or is handed to the best-scoring node already there);
//! * when two nodes meet at a landmark, they exchange their utility tables
//!   (counted as maintenance cost) and every packet moves to the node with
//!   the higher utility for its destination landmark;
//! * delivery happens when a carrier reaches the destination landmark
//!   (handled by the engine).

use dtnflow_core::dense::{DenseMap, DenseSet};
use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::packet::PacketLoc;
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_sim::{Router, TransferError, World};

/// The algorithm-specific part of a baseline: a per-node suitability
/// estimate for carrying packets to each destination landmark.
pub trait UtilityModel {
    /// Display name of the resulting router.
    fn name(&self) -> &'static str;

    /// Learning signal: `node` connected to `lm` at `now`.
    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, now: SimTime);

    /// The node's suitability for delivering to `dst` given the packet's
    /// remaining lifetime. Higher is better; the scale is model-internal.
    fn score(&mut self, node: NodeId, dst: LandmarkId, remaining: SimDuration, now: SimTime)
        -> f64;

    /// Whether `holder` should hand a packet for `dst` to `other`.
    /// The default is a strict score comparison; models with pairwise
    /// normalization (SimBet) override it.
    fn should_forward(
        &mut self,
        holder: NodeId,
        other: NodeId,
        dst: LandmarkId,
        remaining: SimDuration,
        now: SimTime,
    ) -> bool {
        self.score(other, dst, remaining, now) > self.score(holder, dst, remaining, now)
    }

    /// Entries in the utility table exchanged at an encounter (for
    /// maintenance-cost accounting). Defaults to one entry per landmark.
    fn table_entries(&self, num_landmarks: usize) -> usize {
        num_landmarks
    }
}

/// The generic carry-and-compare router.
pub struct UtilityRouter<U: UtilityModel> {
    model: U,
    /// Per node: packets grouped by destination landmark (lazily validated
    /// against the world, since auto-delivery and expiry bypass us).
    /// Dense-indexed map: the forward pass walks destinations in id order
    /// — the same observable order the ordered tree it replaces gave — and
    /// a full receiver aborts the pass midway, so that order matters.
    groups: Vec<DenseMap<u16, DenseSet<PacketId>>>,
    /// Reusable buffers for the forward pass (encounters are the hottest
    /// router path; allocating per pass dominates the pass itself).
    scratch_dsts: Vec<u16>,
    scratch_pkts: Vec<PacketId>,
}

impl<U: UtilityModel> UtilityRouter<U> {
    pub fn new(model: U) -> Self {
        UtilityRouter {
            model,
            groups: Vec::new(),
            scratch_dsts: Vec::new(),
            scratch_pkts: Vec::new(),
        }
    }

    /// Access the wrapped model (diagnostics and tests).
    pub fn model(&self) -> &U {
        &self.model
    }

    fn ensure_node(&mut self, node: NodeId) {
        if self.groups.len() <= node.index() {
            self.groups.resize_with(node.index() + 1, DenseMap::new);
        }
    }

    fn index_packet(&mut self, node: NodeId, dst: LandmarkId, pkt: PacketId) {
        self.ensure_node(node);
        self.groups[node.index()].get_or_default(dst.0).insert(pkt);
    }

    /// One direction of an encounter: move `holder`'s packets to `other`
    /// where the model says so. Stale index entries (auto-delivery and
    /// expiry bypass us) are dropped in the same pass.
    fn forward_pass(&mut self, world: &mut World, holder: NodeId, other: NodeId) {
        self.ensure_node(holder);
        let mut dsts = std::mem::take(&mut self.scratch_dsts);
        dsts.clear();
        dsts.extend(self.groups[holder.index()].keys());
        let mut pkts = std::mem::take(&mut self.scratch_pkts);
        let now = world.now();
        'pass: for &dst in &dsts {
            let Some(set) = self.groups[holder.index()].get_mut(dst) else {
                continue;
            };
            set.retain(|p| world.packet(p).loc == PacketLoc::OnNode(holder));
            pkts.clear();
            pkts.extend(set.iter());
            let dst_lm = LandmarkId(dst);
            for &pkt in pkts.iter() {
                let remaining = world.packet(pkt).remaining_ttl(now);
                if remaining == SimDuration::ZERO {
                    continue;
                }
                if !self
                    .model
                    .should_forward(holder, other, dst_lm, remaining, now)
                {
                    // The model's verdict is per (holder, other, dst,
                    // remaining); with a shared TTL it rarely differs
                    // within a group, but PER's deadline-awareness can
                    // split a group, so keep checking per packet.
                    continue;
                }
                match world.transfer_to_node(pkt, other) {
                    Ok(()) => {
                        if let Some(g) = self.groups[holder.index()].get_mut(dst) {
                            g.remove(pkt);
                        }
                        self.index_packet(other, dst_lm, pkt);
                    }
                    Err(TransferError::NoSpace) => break 'pass, // receiver full
                    Err(_) => continue,
                }
            }
        }
        self.scratch_dsts = dsts;
        self.scratch_pkts = pkts;
    }
}

impl<U: UtilityModel> Router for UtilityRouter<U> {
    fn name(&self) -> &'static str {
        self.model.name()
    }

    fn on_arrive(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        self.model.on_visit(node, lm, world.now());
        // Pick up packets waiting in this subarea (first carrier wins).
        let mut pending = std::mem::take(&mut self.scratch_pkts);
        pending.clear();
        pending.extend(world.pending_at(lm));
        for &pkt in pending.iter() {
            let dst = world.packet(pkt).dst;
            match world.transfer_to_node(pkt, node) {
                Ok(()) => self.index_packet(node, dst, pkt),
                Err(TransferError::NoSpace) => break,
                Err(_) => continue,
            }
        }
        self.scratch_pkts = pending;
    }

    fn on_encounter(
        &mut self,
        world: &mut World,
        newcomer: NodeId,
        present: NodeId,
        _lm: LandmarkId,
    ) {
        // Both nodes exchange their utility tables.
        let entries = self.model.table_entries(world.num_landmarks());
        world.record_table_exchange(entries * 2);
        self.forward_pass(world, newcomer, present);
        self.forward_pass(world, present, newcomer);
    }

    fn on_packet_generated(&mut self, world: &mut World, pkt: PacketId) {
        let p = world.packet(pkt);
        let PacketLoc::PendingAtSource(src) = p.loc else {
            return;
        };
        let dst = p.dst;
        let now = world.now();
        let remaining = p.ttl;
        // Hand it to the best-scoring node already in the subarea.
        let mut best: Option<(f64, NodeId)> = None;
        for n in world.nodes_at(src).iter() {
            if !world.node_has_space(n) {
                continue;
            }
            let s = self.model.score(n, dst, remaining, now);
            if best.is_none_or(|(bs, bn)| s > bs || (s == bs && n < bn)) {
                best = Some((s, n));
            }
        }
        if let Some((_, n)) = best {
            if world.transfer_to_node(pkt, n).is_ok() {
                self.index_packet(n, dst, pkt);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::config::SimConfig;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::time::DAY;
    use dtnflow_mobility::{Trace, Visit};
    use dtnflow_sim::run;

    /// A model that scores nodes by a fixed per-node rank — node ids with
    /// higher numbers are "better" for every destination.
    struct RankModel;
    impl UtilityModel for RankModel {
        fn name(&self) -> &'static str {
            "rank"
        }
        fn on_visit(&mut self, _: NodeId, _: LandmarkId, _: SimTime) {}
        fn score(&mut self, node: NodeId, _: LandmarkId, _: SimDuration, _: SimTime) -> f64 {
            node.0 as f64
        }
    }

    fn two_node_trace() -> Trace {
        // Node 0 visits l0 then stays around l0; node 1 visits l0 (meeting
        // node 0) and then l1.
        let visits = vec![
            Visit::new(NodeId(0), LandmarkId(0), SimTime(0), SimTime(5_000)),
            Visit::new(NodeId(1), LandmarkId(0), SimTime(1_000), SimTime(4_000)),
            Visit::new(NodeId(1), LandmarkId(1), SimTime(10_000), SimTime(12_000)),
            // Another cycle so packets generated later also flow.
            Visit::new(NodeId(0), LandmarkId(0), SimTime(86_400), SimTime(96_000)),
            Visit::new(NodeId(1), LandmarkId(0), SimTime(88_000), SimTime(90_000)),
            Visit::new(NodeId(1), LandmarkId(1), SimTime(100_000), SimTime(102_000)),
        ];
        Trace::new(
            "meet",
            2,
            2,
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            visits,
        )
        .unwrap()
    }

    #[test]
    fn packets_flow_to_higher_utility_and_deliver() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 40.0,
            ttl: DAY,
            time_unit: DAY,
            warmup_fraction: 0.0,
            seed: 1,
            ..SimConfig::default()
        };
        let mut router = UtilityRouter::new(RankModel);
        let out = run(&trace, &cfg, &mut router);
        assert!(out.metrics.generated > 0);
        // Node 1 (higher rank) carries everything; packets to l1 delivered
        // when it travels there.
        assert!(out.metrics.delivered > 0, "some delivery expected");
        // Utility tables were exchanged at the meetings.
        assert!(out.metrics.maintenance_ops > 0.0);
    }

    #[test]
    fn single_copy_semantics() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 10.0,
            ttl: DAY,
            time_unit: DAY,
            warmup_fraction: 0.0,
            seed: 2,
            ..SimConfig::default()
        };
        let mut router = UtilityRouter::new(RankModel);
        let out = run(&trace, &cfg, &mut router);
        // Every live packet is in exactly one place; forwarding ops are
        // bounded by pickups + node-to-node moves (no duplication).
        for p in &out.packets {
            if let PacketLoc::Delivered(_) = p.loc {
                assert!(p.hops >= 1);
            }
        }
    }

    #[test]
    fn stale_group_entries_are_cleaned() {
        // After auto-delivery, the router's index is lazily repaired: a
        // second encounter must not panic or double-transfer.
        let trace = two_node_trace();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 40.0,
            ttl: DAY,
            time_unit: DAY,
            warmup_fraction: 0.0,
            seed: 3,
            ..SimConfig::default()
        };
        let mut router = UtilityRouter::new(RankModel);
        let out = run(&trace, &cfg, &mut router);
        // Reaching the end without panics exercises the lazy cleanup path;
        // deliveries confirm packets really moved through the index.
        assert!(out.metrics.delivered > 0);
    }
}
