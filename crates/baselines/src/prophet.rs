//! PROPHET adapted to landmark destinations (paper §II-A, §V-A.1).
//!
//! "It simply employs the visiting records with landmarks to calculate the
//! future meeting probability to guide the packet forwarding." The
//! delivery predictability `P(n, L)` rises on every visit of node `n` to
//! landmark `L` and ages exponentially between visits, exactly like the
//! original PROPHET node-to-node predictability.

use crate::common::UtilityModel;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};

/// The PROPHET utility model.
pub struct Prophet {
    num_landmarks: usize,
    /// `(P, last update)` per (node, landmark).
    p: Vec<(f64, SimTime)>,
    /// Predictability boost per visit (the canonical `P_init` = 0.75).
    p_init: f64,
    /// Aging factor per aging unit (canonical γ = 0.98).
    gamma: f64,
    /// Length of one aging unit.
    aging_unit: SimDuration,
}

impl Prophet {
    pub fn new(num_nodes: usize, num_landmarks: usize) -> Self {
        Prophet {
            num_landmarks,
            p: vec![(0.0, SimTime::ZERO); num_nodes * num_landmarks],
            p_init: 0.75,
            gamma: 0.98,
            aging_unit: SimDuration::from_hours(1.0),
        }
    }

    fn slot(&self, node: NodeId, lm: LandmarkId) -> usize {
        node.index() * self.num_landmarks + lm.index()
    }

    /// Age `P` to `now` and return it.
    fn aged(&mut self, node: NodeId, lm: LandmarkId, now: SimTime) -> f64 {
        let slot = self.slot(node, lm);
        let (p, last) = self.p[slot];
        if p == 0.0 {
            return 0.0;
        }
        let units = now.since(last).secs() as f64 / self.aging_unit.secs() as f64;
        let aged = p * self.gamma.powf(units);
        self.p[slot] = (aged, now);
        aged
    }
}

impl UtilityModel for Prophet {
    fn name(&self) -> &'static str {
        "PROPHET"
    }

    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, now: SimTime) {
        let aged = self.aged(node, lm, now);
        let slot = self.slot(node, lm);
        self.p[slot] = (aged + (1.0 - aged) * self.p_init, now);
    }

    fn score(&mut self, node: NodeId, dst: LandmarkId, _: SimDuration, now: SimTime) -> f64 {
        self.aged(node, dst, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::{DAY, HOUR};

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn visits_raise_predictability() {
        let mut m = Prophet::new(2, 2);
        let t0 = SimTime(0);
        m.on_visit(NodeId(0), lm(1), t0);
        let s = m.score(NodeId(0), lm(1), DAY, t0);
        assert!((s - 0.75).abs() < 1e-12);
        m.on_visit(NodeId(0), lm(1), t0);
        let s2 = m.score(NodeId(0), lm(1), DAY, t0);
        assert!((s2 - (0.75 + 0.25 * 0.75)).abs() < 1e-12);
        assert!(s2 < 1.0);
    }

    #[test]
    fn predictability_ages() {
        let mut m = Prophet::new(1, 1);
        m.on_visit(NodeId(0), lm(0), SimTime(0));
        let later = SimTime(0) + HOUR.mul(100);
        let s = m.score(NodeId(0), lm(0), DAY, later);
        assert!((s - 0.75 * 0.98f64.powi(100)).abs() < 1e-9);
    }

    #[test]
    fn frequent_visitor_outranks_rare_one() {
        let mut m = Prophet::new(2, 1);
        let mut t = SimTime(0);
        for _ in 0..5 {
            m.on_visit(NodeId(0), lm(0), t);
            t += HOUR;
        }
        m.on_visit(NodeId(1), lm(0), SimTime(0));
        let s0 = m.score(NodeId(0), lm(0), DAY, t);
        let s1 = m.score(NodeId(1), lm(0), DAY, t);
        assert!(s0 > s1, "s0 {s0} s1 {s1}");
    }

    #[test]
    fn unseen_pair_scores_zero() {
        let mut m = Prophet::new(1, 2);
        assert_eq!(m.score(NodeId(0), lm(1), DAY, SimTime(999)), 0.0);
    }
}
