//! SimBet adapted to landmark destinations (paper §II-B, §V-A.1).
//!
//! "It combines centrality and similarity to calculate the suitability of
//! a node to carry packets to a given destination landmark. The similarity
//! is derived from the frequency that the node visits the landmark."
//! Centrality is the node's degree in its landmark graph — how many
//! distinct landmarks it connects ("nodes with high centrality, i.e.
//! connecting many landmarks", §V-A.2). The forwarding decision uses
//! SimBet's pairwise-normalized utility.

use crate::common::UtilityModel;
use dtnflow_core::dense::DenseSet;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};

/// The SimBet utility model.
pub struct SimBet {
    num_landmarks: usize,
    /// Visit counts per (node, landmark) — the similarity signal.
    visits: Vec<u32>,
    /// Distinct landmarks visited per node — the centrality signal.
    seen: Vec<DenseSet<u16>>,
    /// Weight of the similarity component (`α`; 1−α goes to centrality).
    alpha: f64,
}

impl SimBet {
    pub fn new(num_nodes: usize, num_landmarks: usize) -> Self {
        SimBet {
            num_landmarks,
            visits: vec![0; num_nodes * num_landmarks],
            seen: (0..num_nodes).map(|_| DenseSet::new()).collect(),
            alpha: 0.5,
        }
    }

    fn similarity(&self, node: NodeId, dst: LandmarkId) -> f64 {
        self.visits[node.index() * self.num_landmarks + dst.index()] as f64
    }

    fn centrality(&self, node: NodeId) -> f64 {
        self.seen[node.index()].len() as f64
    }
}

impl UtilityModel for SimBet {
    fn name(&self) -> &'static str {
        "SimBet"
    }

    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, _now: SimTime) {
        self.visits[node.index() * self.num_landmarks + lm.index()] += 1;
        self.seen[node.index()].insert(lm.0);
    }

    fn score(&mut self, node: NodeId, dst: LandmarkId, _: SimDuration, _: SimTime) -> f64 {
        // Standalone score (used for ranking at generation time): an
        // unnormalized blend.
        self.alpha * self.similarity(node, dst) + (1.0 - self.alpha) * self.centrality(node)
    }

    fn should_forward(
        &mut self,
        holder: NodeId,
        other: NodeId,
        dst: LandmarkId,
        _remaining: SimDuration,
        _now: SimTime,
    ) -> bool {
        // SimBet's pairwise-normalized utility: each component is the
        // node's share of the pair total.
        let (sh, so) = (self.similarity(holder, dst), self.similarity(other, dst));
        let (ch, co) = (self.centrality(holder), self.centrality(other));
        let sim_total = sh + so;
        let cen_total = ch + co;
        let sim_util = |x: f64| if sim_total > 0.0 { x / sim_total } else { 0.5 };
        let cen_util = |x: f64| if cen_total > 0.0 { x / cen_total } else { 0.5 };
        let u_other = self.alpha * sim_util(so) + (1.0 - self.alpha) * cen_util(co);
        let u_holder = self.alpha * sim_util(sh) + (1.0 - self.alpha) * cen_util(ch);
        u_other > u_holder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::DAY;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime(s)
    }

    #[test]
    fn similarity_dominates_toward_frequent_visitor() {
        let mut m = SimBet::new(2, 3);
        // Node 0 visits dst often, node 1 never (equal centrality 1).
        for k in 0..4 {
            m.on_visit(NodeId(0), lm(2), t(k * 100));
        }
        m.on_visit(NodeId(1), lm(0), t(0));
        assert!(m.should_forward(NodeId(1), NodeId(0), lm(2), DAY, t(500)));
        assert!(!m.should_forward(NodeId(0), NodeId(1), lm(2), DAY, t(500)));
    }

    #[test]
    fn centrality_breaks_similarity_ties() {
        let mut m = SimBet::new(2, 4);
        // Neither node visits dst 3; node 0 connects three landmarks,
        // node 1 only one.
        for l in 0..3 {
            m.on_visit(NodeId(0), lm(l), t(l as u64));
        }
        m.on_visit(NodeId(1), lm(0), t(10));
        assert!(m.should_forward(NodeId(1), NodeId(0), lm(3), DAY, t(20)));
        assert!(!m.should_forward(NodeId(0), NodeId(1), lm(3), DAY, t(20)));
    }

    #[test]
    fn no_forwarding_between_equals() {
        let mut m = SimBet::new(2, 2);
        m.on_visit(NodeId(0), lm(0), t(0));
        m.on_visit(NodeId(1), lm(0), t(1));
        // Identical profiles: strict inequality fails both ways.
        assert!(!m.should_forward(NodeId(0), NodeId(1), lm(1), DAY, t(2)));
        assert!(!m.should_forward(NodeId(1), NodeId(0), lm(1), DAY, t(2)));
    }

    #[test]
    fn standalone_score_blends_components() {
        let mut m = SimBet::new(1, 3);
        m.on_visit(NodeId(0), lm(1), t(0));
        m.on_visit(NodeId(0), lm(2), t(1));
        m.on_visit(NodeId(0), lm(1), t(2));
        // similarity to l1 = 2, centrality = 2.
        let s = m.score(NodeId(0), lm(1), DAY, t(3));
        assert!((s - (0.5 * 2.0 + 0.5 * 2.0)).abs() < 1e-12);
    }
}
