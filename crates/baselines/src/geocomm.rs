//! GeoComm (geocommunity-based dissemination) adapted to landmark
//! destinations (paper §II-C, §V-A.1).
//!
//! "GeoComm measures each node's contact probability per unit time with
//! each geocommunity, i.e., landmark, to guide the packet routing." Each
//! landmark is one geocommunity; a node's utility for a destination is its
//! measured contact rate with that community — visits per elapsed time
//! unit, without PROPHET's recency weighting. As the paper notes, a flat
//! rate reflects future visits less sharply when nodes (buses) spend equal
//! time everywhere on their routes, which is why GeoComm trails PROPHET on
//! the bus trace.

use crate::common::UtilityModel;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};

/// The GeoComm utility model.
pub struct GeoComm {
    num_landmarks: usize,
    visits: Vec<u32>,
    start: Option<SimTime>,
    /// The rate's unit of time.
    unit: SimDuration,
}

impl GeoComm {
    pub fn new(num_nodes: usize, num_landmarks: usize) -> Self {
        GeoComm {
            num_landmarks,
            visits: vec![0; num_nodes * num_landmarks],
            start: None,
            unit: SimDuration::from_hours(24.0),
        }
    }

    /// Contact rate of `node` with `dst`'s community, visits per unit.
    pub fn contact_rate(&self, node: NodeId, dst: LandmarkId, now: SimTime) -> f64 {
        let Some(start) = self.start else { return 0.0 };
        let elapsed_units = (now.since(start).secs() as f64 / self.unit.secs() as f64).max(1.0);
        self.visits[node.index() * self.num_landmarks + dst.index()] as f64 / elapsed_units
    }
}

impl UtilityModel for GeoComm {
    fn name(&self) -> &'static str {
        "GeoComm"
    }

    fn on_visit(&mut self, node: NodeId, lm: LandmarkId, now: SimTime) {
        self.start.get_or_insert(now);
        self.visits[node.index() * self.num_landmarks + lm.index()] += 1;
    }

    fn score(&mut self, node: NodeId, dst: LandmarkId, _: SimDuration, now: SimTime) -> f64 {
        self.contact_rate(node, dst, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::time::DAY;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn rate_reflects_visit_frequency() {
        let mut m = GeoComm::new(2, 2);
        for k in 0..6u64 {
            m.on_visit(NodeId(0), lm(1), SimTime(k * 3_600));
        }
        m.on_visit(NodeId(1), lm(1), SimTime(0));
        let now = SimTime(0) + DAY.mul(2);
        let r0 = m.contact_rate(NodeId(0), lm(1), now);
        let r1 = m.contact_rate(NodeId(1), lm(1), now);
        assert!((r0 - 3.0).abs() < 1e-12, "r0 {r0}");
        assert!((r1 - 0.5).abs() < 1e-12, "r1 {r1}");
        assert!(m.score(NodeId(0), lm(1), DAY, now) > m.score(NodeId(1), lm(1), DAY, now));
    }

    #[test]
    fn no_observations_means_zero() {
        let m = GeoComm::new(1, 1);
        assert_eq!(m.contact_rate(NodeId(0), lm(0), SimTime(1_000)), 0.0);
    }

    #[test]
    fn early_measurements_clamp_elapsed_to_one_unit() {
        let mut m = GeoComm::new(1, 1);
        m.on_visit(NodeId(0), lm(0), SimTime(0));
        // Only an hour has passed; the rate must not explode.
        let r = m.contact_rate(NodeId(0), lm(0), SimTime(3_600));
        assert!((r - 1.0).abs() < 1e-12);
    }
}
