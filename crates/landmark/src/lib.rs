//! Landmark selection and subarea division (paper §IV-A).
//!
//! Given raw place-visit statistics, the network planner (1) takes the most
//! frequently visited places as landmark candidates, (2) removes, for every
//! candidate pair closer than `D` meters, the less-visited one, and
//! (3) splits the area into one subarea per landmark — each point belongs
//! to the nearest landmark (a Voronoi partition, which satisfies all three
//! division rules of §IV-A.2).

#![forbid(unsafe_code)]

pub mod division;
pub mod selection;

pub use division::{SubareaDivision, SubareaGrid};
pub use selection::{select_landmarks, PlaceStat, SelectionConfig};
