//! Subarea division (paper §IV-A.2).
//!
//! Rules from the paper: each subarea contains exactly one landmark, the
//! area between two landmarks is split evenly between their subareas, and
//! subareas do not overlap. Nearest-landmark (Voronoi) assignment
//! satisfies all three and is what we implement; [`SubareaGrid`]
//! rasterizes the division for Fig. 5-style maps.

use dtnflow_core::geometry::{nearest_site, Point, Rect};
use dtnflow_core::ids::LandmarkId;

/// A Voronoi subarea division induced by landmark positions.
#[derive(Debug, Clone)]
pub struct SubareaDivision {
    sites: Vec<Point>,
}

impl SubareaDivision {
    /// Create a division; panics when no landmarks are given.
    pub fn new(sites: Vec<Point>) -> Self {
        assert!(!sites.is_empty(), "division needs at least one landmark");
        SubareaDivision { sites }
    }

    /// Landmark positions.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// Number of subareas.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Always false (construction rejects empty site lists).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The subarea containing `p`: the nearest landmark, ties to the
    /// lowest landmark id (deterministic, non-overlapping).
    pub fn assign(&self, p: Point) -> LandmarkId {
        LandmarkId::from(nearest_site(&self.sites, p))
    }

    /// Whether `p` lies strictly closer to `lm` than to all others.
    pub fn strictly_inside(&self, lm: LandmarkId, p: Point) -> bool {
        let d = self.sites[lm.index()].distance_sq(p);
        self.sites
            .iter()
            .enumerate()
            .all(|(j, s)| j == lm.index() || s.distance_sq(p) > d)
    }
}

/// A rasterized subarea division over a rectangle: per-cell landmark
/// assignment, area shares, and an ASCII rendering (the Fig. 5 map).
#[derive(Debug, Clone)]
pub struct SubareaGrid {
    division: SubareaDivision,
    area: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<LandmarkId>,
}

impl SubareaGrid {
    /// Rasterize `division` over `area` with `cols x rows` cells.
    pub fn new(division: SubareaDivision, area: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        let mut cells = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                let p = Point::new(
                    area.min.x + (c as f64 + 0.5) / cols as f64 * area.width(),
                    area.min.y + (r as f64 + 0.5) / rows as f64 * area.height(),
                );
                cells.push(division.assign(p));
            }
        }
        SubareaGrid {
            division,
            area,
            cols,
            rows,
            cells,
        }
    }

    /// The underlying continuous division.
    pub fn division(&self) -> &SubareaDivision {
        &self.division
    }

    /// The landmark assigned to grid cell `(col, row)`.
    pub fn cell(&self, col: usize, row: usize) -> LandmarkId {
        assert!(col < self.cols && row < self.rows, "cell out of range");
        self.cells[row * self.cols + col]
    }

    /// Fraction of cells assigned to each landmark (sums to 1).
    pub fn area_shares(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.division.len()];
        for lm in &self.cells {
            counts[lm.index()] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.cells.len() as f64)
            .collect()
    }

    /// ASCII map: one character per cell (`0`–`9`, then `a`–`z`, then `+`),
    /// with the landmark's own cell marked `*`. Row 0 is the top
    /// (max-y) edge, like a map.
    pub fn render_ascii(&self) -> String {
        let glyph = |lm: LandmarkId| -> char {
            let i = lm.index();
            match i {
                0..=9 => (b'0' + i as u8) as char,
                10..=35 => (b'a' + (i - 10) as u8) as char,
                _ => '+',
            }
        };
        // Which cell holds each landmark's site?
        let mut site_cells = vec![usize::MAX; self.division.len()];
        for (i, s) in self.division.sites().iter().enumerate() {
            if self.area.contains(*s) {
                let c = (((s.x - self.area.min.x) / self.area.width() * self.cols as f64) as usize)
                    .min(self.cols - 1);
                let r = (((s.y - self.area.min.y) / self.area.height() * self.rows as f64)
                    as usize)
                    .min(self.rows - 1);
                site_cells[i] = r * self.cols + c;
            }
        }
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in (0..self.rows).rev() {
            for c in 0..self.cols {
                let idx = r * self.cols + c;
                let lm = self.cells[idx];
                if site_cells[lm.index()] == idx {
                    out.push('*');
                } else {
                    out.push(glyph(lm));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> SubareaDivision {
        SubareaDivision::new(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)])
    }

    #[test]
    fn each_landmark_is_in_its_own_subarea() {
        let d = two_sites();
        assert_eq!(d.assign(Point::new(0.0, 0.0)), LandmarkId(0));
        assert_eq!(d.assign(Point::new(10.0, 0.0)), LandmarkId(1));
    }

    #[test]
    fn area_between_two_landmarks_splits_at_midpoint() {
        let d = two_sites();
        assert_eq!(d.assign(Point::new(4.9, 3.0)), LandmarkId(0));
        assert_eq!(d.assign(Point::new(5.1, -3.0)), LandmarkId(1));
        // The midpoint itself belongs to exactly one subarea (no overlap).
        assert_eq!(d.assign(Point::new(5.0, 0.0)), LandmarkId(0));
    }

    #[test]
    fn strict_interior_test() {
        let d = two_sites();
        assert!(d.strictly_inside(LandmarkId(0), Point::new(1.0, 0.0)));
        assert!(!d.strictly_inside(LandmarkId(0), Point::new(5.0, 0.0)));
        assert!(!d.strictly_inside(LandmarkId(0), Point::new(9.0, 0.0)));
    }

    #[test]
    fn grid_covers_all_and_shares_sum_to_one() {
        let d = two_sites();
        let g = SubareaGrid::new(
            d,
            Rect::new(Point::new(-5.0, -5.0), Point::new(15.0, 5.0)),
            20,
            10,
        );
        let shares = g.area_shares();
        assert_eq!(shares.len(), 2);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Symmetric layout: both subareas get half the area.
        assert!((shares[0] - 0.5).abs() < 0.05, "share {}", shares[0]);
    }

    #[test]
    fn ascii_render_marks_sites_and_is_rectangular() {
        let d = two_sites();
        let g = SubareaGrid::new(
            d,
            Rect::new(Point::new(-5.0, -5.0), Point::new(15.0, 5.0)),
            10,
            4,
        );
        let art = g.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == 10));
        assert_eq!(art.matches('*').count(), 2);
        assert!(art.contains('0'));
        assert!(art.contains('1'));
    }

    #[test]
    #[should_panic(expected = "at least one landmark")]
    fn rejects_empty_division() {
        SubareaDivision::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "cell out of range")]
    fn cell_bounds_checked() {
        let g = SubareaGrid::new(two_sites(), Rect::from_size(10.0, 10.0), 2, 2);
        g.cell(2, 0);
    }
}
