//! Landmark selection (paper §IV-A.1): popular places become landmarks,
//! subject to a minimum pairwise distance `D`.

use dtnflow_core::geometry::Point;

/// A candidate place with its observed visit frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceStat {
    pub position: Point,
    pub visits: u64,
}

/// Selection parameters.
#[derive(Debug, Clone, Copy)]
pub struct SelectionConfig {
    /// Keep at most this many landmarks (the top popular places).
    pub max_landmarks: usize,
    /// Minimum allowed distance between two landmarks, meters (`D`).
    pub min_distance: f64,
    /// Ignore places with fewer visits than this.
    pub min_visits: u64,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            max_landmarks: usize::MAX,
            min_distance: 100.0,
            min_visits: 1,
        }
    }
}

/// Select landmarks from place statistics.
///
/// Algorithm, as in the paper: form the candidate list of popular places;
/// then for every pair of candidates closer than `D`, remove the one with
/// the lower visit frequency; finally keep the `max_landmarks` most
/// popular survivors. Returns indices into `places`, ordered by descending
/// popularity (ties by index for determinism).
pub fn select_landmarks(places: &[PlaceStat], cfg: &SelectionConfig) -> Vec<usize> {
    assert!(cfg.min_distance >= 0.0, "min distance must be non-negative");
    // Candidates sorted by popularity, most visited first.
    let mut order: Vec<usize> = (0..places.len())
        .filter(|&i| places[i].visits >= cfg.min_visits)
        .collect();
    order.sort_by(|&a, &b| places[b].visits.cmp(&places[a].visits).then(a.cmp(&b)));

    // Greedy pruning in popularity order: a place survives only if no
    // already-kept, more popular place is within D. This removes exactly
    // the less-visited member of every conflicting pair.
    let mut kept: Vec<usize> = Vec::new();
    for &i in &order {
        if kept.len() >= cfg.max_landmarks {
            break;
        }
        let pos = places[i].position;
        if kept
            .iter()
            .all(|&j| places[j].position.distance(pos) >= cfg.min_distance)
        {
            kept.push(i);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(x: f64, y: f64, visits: u64) -> PlaceStat {
        PlaceStat {
            position: Point::new(x, y),
            visits,
        }
    }

    #[test]
    fn keeps_most_popular_of_close_pair() {
        let places = [
            place(0.0, 0.0, 100),
            place(50.0, 0.0, 80), // within 100 m of the first: pruned
            place(500.0, 0.0, 60),
        ];
        let cfg = SelectionConfig::default();
        let sel = select_landmarks(&places, &cfg);
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn all_survivors_respect_min_distance() {
        let places: Vec<PlaceStat> = (0..30)
            .map(|i| place((i as f64) * 40.0, 0.0, 100 - i as u64))
            .collect();
        let cfg = SelectionConfig {
            min_distance: 100.0,
            ..SelectionConfig::default()
        };
        let sel = select_landmarks(&places, &cfg);
        for (a, &i) in sel.iter().enumerate() {
            for &j in &sel[a + 1..] {
                assert!(places[i].position.distance(places[j].position) >= 100.0);
            }
        }
        assert!(!sel.is_empty());
    }

    #[test]
    fn respects_max_landmarks_and_min_visits() {
        let places = [
            place(0.0, 0.0, 100),
            place(500.0, 0.0, 90),
            place(1_000.0, 0.0, 2),
            place(1_500.0, 0.0, 80),
        ];
        let cfg = SelectionConfig {
            max_landmarks: 2,
            min_visits: 10,
            ..SelectionConfig::default()
        };
        let sel = select_landmarks(&places, &cfg);
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn popularity_order_in_result() {
        let places = [place(0.0, 0.0, 10), place(500.0, 0.0, 90)];
        let sel = select_landmarks(&places, &SelectionConfig::default());
        assert_eq!(sel, vec![1, 0]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(select_landmarks(&[], &SelectionConfig::default()).is_empty());
    }

    #[test]
    fn tie_in_popularity_breaks_by_index() {
        let places = [place(0.0, 0.0, 50), place(10.0, 0.0, 50)];
        let sel = select_landmarks(&places, &SelectionConfig::default());
        // Both are within 100 m; the lower index is considered first.
        assert_eq!(sel, vec![0]);
    }
}
