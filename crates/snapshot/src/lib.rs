//! Deterministic checkpoint codec for crash-consistent snapshots
//! (DESIGN.md §11).
//!
//! A snapshot is a self-describing container of named, versioned binary
//! sections. Each stateful subsystem (world, engine, router, obs) encodes
//! its own payload with [`Writer`]/[`Reader`] primitives; the container
//! adds framing, per-section checksums and a whole-file checksum so
//! truncation and corruption are detected before any payload is decoded.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "DTNSNAP1" (8 bytes)
//! format version   (u32)
//! section count    (u64)
//! per section:
//!   name           (u64 length + UTF-8 bytes)
//!   version        (u32)
//!   payload        (u64 length + bytes)
//!   checksum       (u64, FNV-1a over the payload bytes)
//! file checksum    (u64, FNV-1a over everything before it)
//! ```
//!
//! Everything is hand-rolled (no serde) and byte-deterministic: encoding
//! the same logical state twice yields identical bytes, which the chaos
//! harness relies on for byte-equality assertions. Floats travel as raw
//! IEEE-754 bits so NaN payloads survive round-trips. All decode paths
//! return typed [`SnapshotError`]s — no panics (detlint P1).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"DTNSNAP1";

/// Container format version this crate writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Typed decode/validation failure. Every decode path reports one of
/// these instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before a read completed.
    UnexpectedEof { context: &'static str },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// Container or section version is newer than this build understands.
    UnsupportedVersion {
        context: String,
        found: u32,
        supported: u32,
    },
    /// A stored checksum does not match the recomputed one.
    ChecksumMismatch { context: String },
    /// An enum tag byte is out of range for the type being decoded.
    InvalidTag { context: &'static str, tag: u64 },
    /// A payload had bytes left over after its last field was decoded.
    TrailingBytes { context: &'static str, count: usize },
    /// A required section is absent from the container.
    MissingSection { name: String },
    /// A length prefix or string was malformed.
    Corrupt { context: &'static str },
    /// Decoded state disagrees with the run being resumed (wrong trace,
    /// config, or fault plan fingerprint).
    Mismatch { context: String },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic bytes"),
            SnapshotError::UnsupportedVersion {
                context,
                found,
                supported,
            } => write!(
                f,
                "unsupported {context} version {found} (this build supports {supported})"
            ),
            SnapshotError::ChecksumMismatch { context } => {
                write!(f, "checksum mismatch in {context}")
            }
            SnapshotError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            SnapshotError::TrailingBytes { context, count } => {
                write!(f, "{count} trailing bytes after decoding {context}")
            }
            SnapshotError::MissingSection { name } => {
                write!(f, "snapshot is missing required section `{name}`")
            }
            SnapshotError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            SnapshotError::Mismatch { context } => {
                write!(f, "snapshot does not match this run: {context}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash — the same cheap deterministic hash the workspace
/// already uses for RNG stream labels.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Append-only binary encoder for section payloads.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so 32- and 64-bit builds agree on bytes.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Floats travel as raw bits: NaN payloads and signed zeros survive.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-based binary decoder over a section payload.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotError::UnexpectedEof { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapshotError::InvalidTag {
                context,
                tag: tag as u64,
            }),
        }
    }

    pub fn u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn usize(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupt { context })
    }

    /// Read a length prefix that must be plausible for the bytes left —
    /// rejects lengths larger than the remaining input so corrupt
    /// prefixes fail fast instead of attempting huge allocations.
    pub fn seq_len(&mut self, context: &'static str) -> Result<usize, SnapshotError> {
        let n = self.usize(context)?;
        if n > self.remaining() {
            return Err(SnapshotError::Corrupt { context });
        }
        Ok(n)
    }

    pub fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let n = self.seq_len(context)?;
        self.take(n, context)
    }

    pub fn str(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let b = self.bytes(context)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::Corrupt { context })
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the payload was fully consumed; extra bytes mean the
    /// encoder and decoder disagree about the schema.
    pub fn finish(&self, context: &'static str) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                context,
                count: self.remaining(),
            });
        }
        Ok(())
    }
}

/// One named, versioned payload inside a snapshot container.
#[derive(Debug, Clone)]
pub struct Section {
    pub name: String,
    pub version: u32,
    pub payload: Vec<u8>,
    pub checksum: u64,
}

/// Builds a snapshot container from named sections (insertion order is
/// preserved, so identical inputs give identical bytes).
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    pub fn add_section(&mut self, name: &str, version: u32, payload: Vec<u8>) -> &mut Self {
        self.sections.push((name.to_string(), version, payload));
        self
    }

    /// Total payload bytes added so far (excluding framing).
    pub fn payload_len(&self) -> usize {
        self.sections.iter().map(|(_, _, p)| p.len()).sum()
    }

    pub fn finish(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_usize(self.sections.len());
        for (name, version, payload) in &self.sections {
            w.put_str(name);
            w.put_u32(*version);
            w.put_bytes(payload);
            w.put_u64(fnv1a64(payload));
        }
        let file_sum = fnv1a64(w.as_bytes());
        w.put_u64(file_sum);
        w.into_bytes()
    }
}

/// A parsed, checksum-verified snapshot container.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    pub format_version: u32,
    pub sections: Vec<Section>,
}

impl SnapshotFile {
    /// Parse and fully verify a container: magic, format version, section
    /// framing, per-section checksums and the whole-file checksum.
    pub fn parse(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(SnapshotError::UnexpectedEof { context: "magic" });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        // Whole-file checksum first: the trailing u64 must hash everything
        // before it, so truncation or bit flips fail here up front.
        if bytes.len() < MAGIC.len() + 4 + 8 + 8 {
            return Err(SnapshotError::UnexpectedEof {
                context: "file header",
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let mut tail = Reader::new(&bytes[bytes.len() - 8..]);
        let stored = tail.u64("file checksum")?;
        if fnv1a64(body) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                context: "file".to_string(),
            });
        }

        let mut r = Reader::new(body);
        let _ = r.take(MAGIC.len(), "magic")?;
        let format_version = r.u32("format version")?;
        if format_version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                context: "container".to_string(),
                found: format_version,
                supported: FORMAT_VERSION,
            });
        }
        let count = r.usize("section count")?;
        let mut sections = Vec::new();
        for _ in 0..count {
            let name = r.str("section name")?;
            let version = r.u32("section version")?;
            let payload = r.bytes("section payload")?.to_vec();
            let checksum = r.u64("section checksum")?;
            if fnv1a64(&payload) != checksum {
                return Err(SnapshotError::ChecksumMismatch {
                    context: format!("section `{name}`"),
                });
            }
            sections.push(Section {
                name,
                version,
                payload,
                checksum,
            });
        }
        r.finish("section table")?;
        Ok(SnapshotFile {
            format_version,
            sections,
        })
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Result<&Section, SnapshotError> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| SnapshotError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Section lookup that also pins the expected section version.
    pub fn section_versioned(&self, name: &str, version: u32) -> Result<&Section, SnapshotError> {
        let s = self.section(name)?;
        if s.version != version {
            return Err(SnapshotError::UnsupportedVersion {
                context: format!("section `{name}`"),
                found: s.version,
                supported: version,
            });
        }
        Ok(s)
    }
}

/// One entry of a snapshot schema: a section that must be present at an
/// exact version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaSection {
    pub name: &'static str,
    pub version: u32,
}

/// Validate a parsed container against a schema: every expected section
/// present at the expected version, and no unknown sections (a snapshot
/// written by a newer build must not be silently half-read).
pub fn validate_schema(
    file: &SnapshotFile,
    expected: &[SchemaSection],
) -> Result<(), SnapshotError> {
    for want in expected {
        file.section_versioned(want.name, want.version)?;
    }
    for s in &file.sections {
        if !expected.iter().any(|w| w.name == s.name) {
            return Err(SnapshotError::Mismatch {
                context: format!("unknown section `{}`", s.name),
            });
        }
    }
    Ok(())
}

/// Self-description of a verified snapshot, for tooling.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    pub format_version: u32,
    pub total_bytes: usize,
    /// (name, version, payload bytes, checksum) per section, file order.
    pub sections: Vec<(String, u32, usize, u64)>,
}

impl SnapshotInfo {
    /// Hand-rolled JSON description (section names are codec-controlled
    /// identifiers, so no string escaping is needed).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format_version\": {},\n", self.format_version));
        out.push_str(&format!("  \"total_bytes\": {},\n", self.total_bytes));
        out.push_str("  \"sections\": [\n");
        for (i, (name, version, len, sum)) in self.sections.iter().enumerate() {
            let comma = if i + 1 == self.sections.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"version\": {version}, \"bytes\": {len}, \"checksum\": {sum}}}{comma}\n"
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Parse, checksum-verify and describe a snapshot without decoding any
/// payload.
pub fn validate(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    let file = SnapshotFile::parse(bytes)?;
    Ok(SnapshotInfo {
        format_version: file.format_version,
        total_bytes: bytes.len(),
        sections: file
            .sections
            .iter()
            .map(|s| (s.name.clone(), s.version, s.payload.len(), s.checksum))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("hello");
        let mut b = SnapshotBuilder::new();
        b.add_section("alpha", 1, w.into_bytes());
        b.add_section("beta", 3, vec![1, 2, 3]);
        b.finish()
    }

    #[test]
    fn roundtrip_primitives() {
        let bytes = sample();
        let file = SnapshotFile::parse(&bytes).unwrap();
        assert_eq!(file.format_version, FORMAT_VERSION);
        assert_eq!(file.sections.len(), 2);
        let s = file.section_versioned("alpha", 1).unwrap();
        let mut r = Reader::new(&s.payload);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u16("b").unwrap(), 300);
        assert_eq!(r.u32("c").unwrap(), 70_000);
        assert_eq!(r.u64("d").unwrap(), 1 << 40);
        assert!(r.f64("e").unwrap().is_nan());
        assert!(r.bool("f").unwrap());
        assert_eq!(r.str("g").unwrap(), "hello");
        r.finish("alpha").unwrap();
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut w = Writer::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.f64("x").unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            SnapshotFile::parse(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        match SnapshotFile::parse(&bytes) {
            Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            match SnapshotFile::parse(&bytes[..cut]) {
                Err(
                    SnapshotError::UnexpectedEof { .. } | SnapshotError::ChecksumMismatch { .. },
                ) => {}
                other => panic!("cut at {cut}: expected failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample();
        // Bump the format version (bytes 8..12) and re-stamp the file
        // checksum so only the version check can fail.
        bytes[8] = bytes[8].wrapping_add(1);
        let body_len = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        match SnapshotFile::parse(&bytes) {
            Err(SnapshotError::UnsupportedVersion { found, .. }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
            }
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn missing_section_and_version_pin() {
        let bytes = sample();
        let file = SnapshotFile::parse(&bytes).unwrap();
        assert!(matches!(
            file.section("gamma"),
            Err(SnapshotError::MissingSection { .. })
        ));
        assert!(matches!(
            file.section_versioned("beta", 1),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn schema_validation() {
        let bytes = sample();
        let file = SnapshotFile::parse(&bytes).unwrap();
        let ok = [
            SchemaSection {
                name: "alpha",
                version: 1,
            },
            SchemaSection {
                name: "beta",
                version: 3,
            },
        ];
        validate_schema(&file, &ok).unwrap();
        // Missing expected section.
        let missing = [SchemaSection {
            name: "gamma",
            version: 1,
        }];
        assert!(validate_schema(&file, &missing).is_err());
        // Unknown extra section.
        let narrow = [SchemaSection {
            name: "alpha",
            version: 1,
        }];
        assert!(matches!(
            validate_schema(&file, &narrow),
            Err(SnapshotError::Mismatch { .. })
        ));
    }

    #[test]
    fn validate_describes_sections_as_json() {
        let bytes = sample();
        let info = validate(&bytes).unwrap();
        assert_eq!(info.sections.len(), 2);
        assert_eq!(info.total_bytes, bytes.len());
        let json = info.to_json();
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"version\": 3"));
    }

    #[test]
    fn seq_len_rejects_oversized_prefix() {
        let mut w = Writer::new();
        w.put_usize(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.seq_len("v"), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn reader_reports_trailing_bytes() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let _ = r.u8("x").unwrap();
        assert!(matches!(
            r.finish("payload"),
            Err(SnapshotError::TrailingBytes { count: 1, .. })
        ));
    }
}
